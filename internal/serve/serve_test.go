package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
)

const okSrc = `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL WORK(K, 7)
END
SUBROUTINE WORK(N, M)
INTEGER N, M
PRINT *, N + M
END
`

// newTestServer returns a Server with fast retries and no real backoff
// sleeps, suitable for direct handler-level tests.
func newTestServer(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	s.sleep = func(ctx context.Context, d time.Duration) {}
	return s
}

func postAnalyze(t *testing.T, s *Server, req AnalyzeRequest) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(s, body)
}

func postRaw(s *Server, body []byte) (int, http.Header, []byte) {
	r := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w.Code, w.Header(), w.Body.Bytes()
}

func decodeResult(t *testing.T, body []byte) AnalyzeResponse {
	t.Helper()
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("200 body is not an AnalyzeResponse: %v\n%s", err, body)
	}
	return resp
}

func decodeError(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("error body is not an ErrorResponse: %v\n%s", err, body)
	}
	return resp.Error
}

// TestAnalyzeOK: the happy path returns 200 "ok" with the paper's
// constants for WORK.
func TestAnalyzeOK(t *testing.T) {
	s := newTestServer(Config{})
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	resp := decodeResult(t, body)
	if resp.Status != "ok" || resp.Retries != 0 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	ks := resp.Constants["WORK"]
	if len(ks) != 2 || ks[0].Name != "M" || ks[0].Value != 7 || ks[1].Name != "N" || ks[1].Value != 5 {
		t.Fatalf("WORK constants = %+v, want M=7 N=5", ks)
	}
	if st := s.Stats(); st.OK != 1 || st.Requests != 1 {
		t.Fatalf("stats after success: %+v", st)
	}
}

// TestAnalyzeInputError: program diagnostics are 422s with class
// "input" and leave the breaker untouched.
func TestAnalyzeInputError(t *testing.T) {
	s := newTestServer(Config{BreakerThreshold: 1})
	for i := 0; i < 3; i++ {
		code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: "PROGRAM P\nCALL NOPE(1)\nEND\n"})
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, body %s", code, body)
		}
		if eb := decodeError(t, body); eb.Class != "input" {
			t.Fatalf("class = %q, want input", eb.Class)
		}
	}
	st := s.Stats()
	if st.InputErrors != 3 || st.Breaker.State != "closed" {
		t.Fatalf("input errors must not trip the breaker: %+v", st)
	}
}

// TestAnalyzeBadRequest: malformed JSON and bad enum values are 400s;
// non-POST is 405.
func TestAnalyzeBadRequest(t *testing.T) {
	s := newTestServer(Config{})
	if code, _, body := postRaw(s, []byte("{not json")); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status = %d, body %s", code, body)
	}
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc, Config: RequestConfig{Kind: "psychic"}})
	if code != http.StatusBadRequest {
		t.Fatalf("bad kind: status = %d, body %s", code, body)
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/analyze", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d", w.Code)
	}
}

// TestAdmissionControlSheds: with one worker and a queue of one, a
// third concurrent request is shed with 429 + Retry-After while the
// first two eventually succeed.
func TestAdmissionControlSheds(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer remove()

	s := newTestServer(Config{MaxConcurrency: 1, QueueDepth: 1})
	type outcome struct {
		code int
		hdr  http.Header
		body []byte
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
			results <- outcome{code, hdr, body}
		}()
	}
	// Wait until one request is parked inside the solver and the other
	// is queued behind the single worker slot.
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: status = %d, body %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if eb := decodeError(t, body); eb.Class != "shed" {
		t.Errorf("class = %q, want shed", eb.Class)
	}

	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("admitted request: status = %d, body %s", r.code, r.body)
		}
	}
	if st := s.Stats(); st.Shed != 1 || st.OK != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRequestDeadline: a request whose budget is gone mid-solve fails
// fast with 503 class "exhausted:deadline" and is not retried (the
// clock cannot come back).
func TestRequestDeadline(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("solve", func() error {
		time.Sleep(50 * time.Millisecond) // outlive the 1ms request budget
		return nil
	})
	defer remove()

	s := newTestServer(Config{})
	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc, TimeoutMs: 1})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "exhausted:deadline" {
		t.Fatalf("class = %q, want exhausted:deadline", eb.Class)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	st := s.Stats()
	if st.DeadlineFails != 1 || st.RetriesTotal != 0 {
		t.Fatalf("deadline failure must not burn retries: %+v", st)
	}
}

// TestRetryThenSuccess: transient internal panics are retried with
// backoff at degraded configurations until one attempt lands; the
// response reports the retries and counts as degraded.
func TestRetryThenSuccess(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	var calls atomic.Int64
	remove := guard.Set("solve", func() error {
		if calls.Add(1) <= 2 {
			panic("transient fault")
		}
		return nil
	})
	defer remove()

	var slept atomic.Int64
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.sleep = func(ctx context.Context, d time.Duration) {
		if d <= 0 {
			panic("non-positive backoff")
		}
		slept.Add(1)
	}
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	resp := decodeResult(t, body)
	if resp.Status != "degraded" || resp.Retries != 2 {
		t.Fatalf("response: %+v, want degraded with 2 retries", resp)
	}
	if slept.Load() != 2 {
		t.Errorf("backoff slept %d times, want 2", slept.Load())
	}
	st := s.Stats()
	if st.RetriedReqs != 1 || st.RetriesTotal != 2 || st.Degraded != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PanicsByPhase["solve"] != 2 {
		t.Fatalf("panics by phase: %+v", st.PanicsByPhase)
	}
	if st.Breaker.State != "closed" {
		t.Fatalf("a recovered request must not advance the breaker: %+v", st.Breaker)
	}
}

// TestRetriesExhaustedTripBreaker: persistent internal failures exhaust
// the retries, count as breaker failures, trip the circuit, fail fast
// while open, and the circuit probes its way closed again after the
// cooldown once the fault clears.
func TestRetriesExhaustedTripBreaker(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("solve", func() error { panic("persistent fault") })

	s, err := New(Config{MaxRetries: 1, BreakerThreshold: 2, BreakerProbes: 1, BreakerCooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.sleep = func(ctx context.Context, d time.Duration) {}
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	s.breaker.now = clk.now

	for i := 0; i < 2; i++ {
		code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
		if code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status = %d, body %s", i, code, body)
		}
		if eb := decodeError(t, body); eb.Class != "panic:solve" {
			t.Fatalf("request %d: class = %q, want panic:solve", i, eb.Class)
		}
	}
	// Tripped: the next request is rejected without touching the
	// analyzer.
	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "breaker-open" {
		t.Fatalf("class = %q, want breaker-open", eb.Class)
	}
	if hdr.Get("Retry-After") != "60" {
		t.Errorf("Retry-After = %q, want 60", hdr.Get("Retry-After"))
	}

	// Fault clears, cooldown passes: the half-open probe closes it.
	remove()
	clk.advance(time.Minute)
	code, _, body = postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusOK {
		t.Fatalf("probe: status = %d, body %s", code, body)
	}
	st := s.Stats()
	if st.Breaker.State != "closed" || st.Breaker.Trips != 1 {
		t.Fatalf("breaker after recovery: %+v", st.Breaker)
	}
	if st.BreakerOpen != 1 || st.InternalFails != 2 || st.RetriesTotal != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDrainRefusesNewWork: after Shutdown begins, /readyz flips to 503
// and new analyses are refused with class "draining".
func TestDrainRefusesNewWork(t *testing.T) {
	s := newTestServer(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "draining" {
		t.Fatalf("class = %q, want draining", eb.Class)
	}
	r := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status = %d", w.Code)
	}
}

// TestHealthAndStats: /healthz is always 200; /statsz returns a valid
// snapshot that reflects traffic.
func TestHealthAndStats(t *testing.T) {
	s := newTestServer(Config{})
	postAnalyze(t, s, AnalyzeRequest{Source: okSrc})

	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz: status = %d", w.Code)
	}

	r = httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/statsz: status = %d", w.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/statsz body: %v\n%s", err, w.Body.Bytes())
	}
	if snap.Requests != 1 || snap.OK != 1 || snap.Breaker.State != "closed" {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestShedRetryAfterScalesWithQueue: the 429 Retry-After is derived
// from the queue's drain time (capacity/workers × EWMA latency), not
// hardcoded, so clients back off proportionally to the backlog.
func TestShedRetryAfterScalesWithQueue(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer remove()

	s := newTestServer(Config{MaxConcurrency: 1, QueueDepth: 3})
	// Pretend past analyses averaged 2s: a full queue (4 requests, one
	// worker) should drain in about 8s.
	s.stats.latencyEWMA.Store(int64(2 * time.Second))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
		}()
	}
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 4", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After = %q, want 8 (4 queued / 1 worker x 2s EWMA)", got)
	}
	close(release)
	wg.Wait()
}

// TestDrainRetryAfterReflectsDrainBudget: a draining server tells
// clients to come back after the drain budget, when a replacement is
// serving (or this process is gone) — not after a hardcoded second.
func TestDrainRetryAfterReflectsDrainBudget(t *testing.T) {
	s := newTestServer(Config{DrainTimeout: 7 * time.Second})
	s.BeginDrain()
	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "draining" {
		t.Fatalf("class = %q, want draining", eb.Class)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7 (the drain budget)", got)
	}
}

// TestFailureRetryAfterTracksBreakerCooldown: internal-failure 503s
// carry a Retry-After proportional to how close the breaker is to its
// cooldown — half of it at half the trip threshold, all of it on the
// tripping failure.
func TestFailureRetryAfterTracksBreakerCooldown(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("solve", func() error { panic("persistent fault") })
	defer remove()

	s := newTestServer(Config{MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	_, hdr, _ := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if got := hdr.Get("Retry-After"); got != "30" {
		t.Errorf("first failure Retry-After = %q, want 30 (half the cooldown)", got)
	}
	_, hdr, _ = postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if got := hdr.Get("Retry-After"); got != "60" {
		t.Errorf("tripping failure Retry-After = %q, want 60 (the full cooldown)", got)
	}
}

// TestNegativeMaxRetriesDisablesLadder: MaxRetries < 0 means the
// retry/degrade ladder never runs — a transient failure surfaces
// immediately as a 503 at full fidelity, for deployments where a
// coordinator owns the retry policy.
func TestNegativeMaxRetriesDisablesLadder(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	var calls atomic.Int64
	remove := guard.Set("solve", func() error {
		if calls.Add(1) == 1 {
			panic("transient fault")
		}
		return nil
	})
	defer remove()

	s := newTestServer(Config{MaxRetries: -1})
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "panic:solve" {
		t.Fatalf("class = %q, want panic:solve", eb.Class)
	}
	st := s.Stats()
	if st.RetriesTotal != 0 || st.RetriedReqs != 0 {
		t.Fatalf("ladder ran despite MaxRetries=-1: %+v", st)
	}
	// The next request (fault gone) succeeds at full fidelity.
	code, _, body = postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if resp := decodeResult(t, body); resp.Status != "ok" || resp.Retries != 0 {
		t.Fatalf("response: %+v, want full-fidelity ok", resp)
	}
}

// TestWantPayloads: the want flags switch on jump functions and the
// transformed source.
func TestWantPayloads(t *testing.T) {
	s := newTestServer(Config{})
	code, _, body := postAnalyze(t, s, AnalyzeRequest{
		Source: okSrc,
		Want:   RequestWant{JumpFunctions: true, Transformed: true},
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	resp := decodeResult(t, body)
	if len(resp.JumpFunctions) == 0 {
		t.Error("jump_functions requested but absent")
	}
	if resp.Transformed == "" {
		t.Error("transformed requested but absent")
	}
}
