package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/ipcp"
)

// CacheCounters is the /statsz snapshot of one cache layer.
type CacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// resultCache memoizes whole rendered responses, keyed by (filename,
// source, normalized configuration, want flags). Only clean responses
// — status "ok", zero retries, no degradations — are stored, so a hit
// replays bytes the uncached path is guaranteed to reproduce. LRU
// entries are evicted past the byte budget.
type resultCache struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	lru       *list.List // of *resultEntry, front = most recent
	byKey     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type resultEntry struct {
	key   string
	body  []byte
	bytes int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// resultKey fingerprints everything a response's bytes depend on. The
// analyzer's results are byte-identical at every parallelism level, so
// execution knobs (parallelism, timeouts, retry policy) are excluded;
// every semantic axis and both want flags are included. Fields are
// length-prefixed so no boundary ambiguity exists.
func resultKey(filename, source string, cfg ipcp.Config, want RequestWant) string {
	h := sha256.New()
	put := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	put(filename)
	put(source)
	put(fmt.Sprintf("k=%d;mod=%t;ret=%t;c=%t;g=%t;s=%d;d=%s;b=%d,%d,%d;jf=%t;tr=%t",
		cfg.Kind, cfg.UseMOD, cfg.UseReturnJFs, cfg.Complete, cfg.Gated, cfg.Solver,
		cfg.Domain,
		cfg.Budget.MaxSolverSteps, cfg.Budget.MaxRounds, cfg.Budget.MaxJFExprSize,
		want.JumpFunctions, want.Transformed))
	return string(h.Sum(nil))
}

func (rc *resultCache) get(key string) ([]byte, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el := rc.byKey[key]
	if el == nil {
		rc.misses++
		return nil, false
	}
	rc.hits++
	rc.lru.MoveToFront(el)
	return el.Value.(*resultEntry).body, true
}

func (rc *resultCache) put(key string, body []byte) {
	e := &resultEntry{key: key, body: body, bytes: int64(len(body)+len(key)) + 128}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.byKey[key] != nil {
		return // a concurrent identical request stored it first
	}
	rc.byKey[key] = rc.lru.PushFront(e)
	rc.bytes += e.bytes
	for rc.bytes > rc.maxBytes && rc.lru.Len() > 1 {
		back := rc.lru.Back()
		old := back.Value.(*resultEntry)
		rc.lru.Remove(back)
		delete(rc.byKey, old.key)
		rc.bytes -= old.bytes
		rc.evictions++
	}
}

func (rc *resultCache) counters() CacheCounters {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return CacheCounters{
		Hits: rc.hits, Misses: rc.misses, Evictions: rc.evictions,
		Entries: rc.lru.Len(), Bytes: rc.bytes, MaxBytes: rc.maxBytes,
	}
}
