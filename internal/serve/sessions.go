package serve

// The session API: stateful compiler-daemon sessions over HTTP.
//
//	POST   /v1/sessions             open a session (runs the first analysis)
//	POST   /v1/sessions/{id}/edit   apply unit deltas, re-analyze incrementally
//	GET    /v1/sessions/{id}/result fetch the current analysis result
//	DELETE /v1/sessions/{id}        close the session
//
// A session's /result body is rendered by the same renderResult as
// POST /v1/analyze, so for equal program text and configuration the
// two are byte-identical — the equivalence the session test suite and
// the CI sessions-smoke job assert.
//
// Sessions are resident state, so the manager bounds them three ways:
// a session-count limit and a byte budget, both enforced LRU (the
// least-recently-touched session is evicted first), and a TTL that
// expires idle sessions. Every eviction is counted in /statsz.

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/ipcp"
)

// OpenSessionRequest is the POST /v1/sessions body. Config and Want
// have /v1/analyze semantics; Want is fixed at open so /result bodies
// stay comparable across edits.
type OpenSessionRequest struct {
	Filename string        `json:"filename"`
	Source   string        `json:"source"`
	Config   RequestConfig `json:"config"`
	Want     RequestWant   `json:"want"`
}

// OpenSessionResponse is the 200 body for a successful open.
type OpenSessionResponse struct {
	ID          string `json:"id"`
	Units       int    `json:"units"`
	Fingerprint string `json:"fingerprint"`
}

// SessionEditRequest is the POST /v1/sessions/{id}/edit body.
type SessionEditRequest struct {
	Edits []ipcp.UnitEdit `json:"edits"`
}

// SessionEditResponse is the 200 body for a successful edit.
type SessionEditResponse struct {
	ID          string        `json:"id"`
	Info        ipcp.EditInfo `json:"info"`
	Fingerprint string        `json:"fingerprint"`
}

// SessionCounters is the /statsz sessions block.
type SessionCounters struct {
	Active   int   `json:"active"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	Limit    int   `json:"limit"`

	Opens        int64 `json:"opens"`
	OpenFailures int64 `json:"open_failures"`
	Closed       int64 `json:"closed"`
	EvictedLRU   int64 `json:"evicted_lru"`
	EvictedBytes int64 `json:"evicted_bytes"`
	ExpiredTTL   int64 `json:"expired_ttl"`

	Edits            int64 `json:"edits"`
	FastEdits        int64 `json:"fast_edits"`
	FullRebuilds     int64 `json:"full_rebuilds"`
	UnitsInvalidated int64 `json:"units_invalidated"`
	ContextsReused   int64 `json:"contexts_reused"`
	JumpReused       int64 `json:"jump_reused"`
	SubstReused      int64 `json:"subst_reused"`
	DeltaBytes       int64 `json:"delta_bytes"`

	// PerSession reports each resident session's own counters.
	PerSession map[string]SessionStatsJSON `json:"per_session,omitempty"`
}

// SessionStatsJSON is one resident session's /statsz entry.
type SessionStatsJSON struct {
	Units            int     `json:"units"`
	Bytes            int64   `json:"bytes"`
	IdleSeconds      float64 `json:"idle_seconds"`
	Edits            int64   `json:"edits"`
	FastEdits        int64   `json:"fast_edits"`
	FullRebuilds     int64   `json:"full_rebuilds"`
	UnitsInvalidated int64   `json:"units_invalidated"`
	ContextHits      uint64  `json:"context_hits"`
	ContextMisses    uint64  `json:"context_misses"`
	JumpReused       int64   `json:"jump_reused"`
	SubstReused      int64   `json:"subst_reused"`
	DeltaBytes       int64   `json:"delta_bytes"`
}

// sessionEntry is one resident session plus the request shape its
// /result bodies are rendered with.
type sessionEntry struct {
	id       string
	sess     *ipcp.Session
	cfg      ipcp.Config
	req      *AnalyzeRequest // filename + want, for renderResult
	created  time.Time
	lastUsed time.Time // guarded by the manager's mu
	bytes    int64     // last MemoryBytes estimate, guarded by mu
}

// sessionManager owns the resident sessions and their budgets.
type sessionManager struct {
	limit    int
	maxBytes int64
	ttl      time.Duration
	tag      string // per-boot random component of every session ID

	mu      sync.Mutex
	seq     int64
	entries map[string]*sessionEntry

	opens        int64
	openFailures int64
	closed       int64
	evictedLRU   int64
	evictedBytes int64
	expiredTTL   int64

	edits            int64
	fastEdits        int64
	fullRebuilds     int64
	unitsInvalidated int64
	contextsReused   int64
	jumpReused       int64
	substReused      int64
	deltaBytes       int64
}

func newSessionManager(limit int, maxBytes int64, ttl time.Duration) *sessionManager {
	return &sessionManager{
		limit:    limit,
		maxBytes: maxBytes,
		ttl:      ttl,
		tag:      sessionInstanceTag(),
		entries:  make(map[string]*sessionEntry),
	}
}

// sessionInstanceTag is the random per-boot component folded into
// every session ID. Sessions are memory-resident, so sequence numbers
// alone repeat across restarts and across backends — but a coordinator
// fronting several backends resolves an unknown ID by broadcast, which
// is only sound if an ID can name at most one live session fleet-wide.
func sessionInstanceTag() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: uniqueness degrades to per-process, never fails open.
		return fmt.Sprintf("%08x", os.Getpid())
	}
	return fmt.Sprintf("%08x", b)
}

// expireLocked evicts sessions idle past the TTL. Called with mu held.
func (m *sessionManager) expireLocked(now time.Time) {
	for id, e := range m.entries {
		if now.Sub(e.lastUsed) > m.ttl {
			delete(m.entries, id)
			m.expiredTTL++
		}
	}
}

// enforceLocked evicts least-recently-used sessions until both the
// count limit and the byte budget hold. keep is never evicted (it is
// the session just touched). Called with mu held.
func (m *sessionManager) enforceLocked(keep *sessionEntry) {
	for {
		var total int64
		for _, e := range m.entries {
			total += e.bytes
		}
		overCount := len(m.entries) > m.limit
		overBytes := total > m.maxBytes
		if !overCount && !overBytes {
			return
		}
		var victim *sessionEntry
		for _, e := range m.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUsed.Before(victim.lastUsed) {
				victim = e
			}
		}
		if victim == nil {
			return // only the kept session remains; budgets cannot bind it
		}
		delete(m.entries, victim.id)
		if overCount {
			m.evictedLRU++
		} else {
			m.evictedBytes++
		}
	}
}

// add registers a fresh session, assigns its ID, and enforces budgets.
func (m *sessionManager) add(e *sessionEntry) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	m.expireLocked(now)
	m.seq++
	e.id = fmt.Sprintf("s-%s-%d", m.tag, m.seq)
	e.created, e.lastUsed = now, now
	e.bytes = e.sess.MemoryBytes()
	m.entries[e.id] = e
	m.opens++
	m.enforceLocked(e)
	return e.id
}

// lookup fetches a session and marks it used (which also shields it
// from eviction while the caller works on it).
func (m *sessionManager) lookup(id string) *sessionEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(time.Now())
	e := m.entries[id]
	if e != nil {
		e.lastUsed = time.Now()
	}
	return e
}

// afterEdit folds one edit outcome into the aggregate counters,
// refreshes the session's byte estimate, and re-enforces budgets.
func (m *sessionManager) afterEdit(e *sessionEntry, info ipcp.EditInfo, nEdits int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.edits += int64(nEdits)
	if info.FastPath {
		m.fastEdits++
	} else {
		m.fullRebuilds++
	}
	m.unitsInvalidated += int64(info.UnitsInvalidated)
	m.contextsReused += int64(info.ContextsReused)
	m.jumpReused += int64(info.JumpReused)
	m.substReused += int64(info.SubstReused)
	m.deltaBytes += int64(info.DeltaBytes)
	if _, live := m.entries[e.id]; live {
		e.lastUsed = time.Now()
		e.bytes = e.sess.MemoryBytes()
		m.enforceLocked(e)
	}
}

// remove closes a session explicitly.
func (m *sessionManager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; !ok {
		return false
	}
	delete(m.entries, id)
	m.closed++
	return true
}

func (m *sessionManager) openFailed() {
	m.mu.Lock()
	m.openFailures++
	m.mu.Unlock()
}

// counters snapshots the /statsz block.
func (m *sessionManager) counters() SessionCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	m.expireLocked(now)
	c := SessionCounters{
		Active:   len(m.entries),
		MaxBytes: m.maxBytes,
		Limit:    m.limit,

		Opens:        m.opens,
		OpenFailures: m.openFailures,
		Closed:       m.closed,
		EvictedLRU:   m.evictedLRU,
		EvictedBytes: m.evictedBytes,
		ExpiredTTL:   m.expiredTTL,

		Edits:            m.edits,
		FastEdits:        m.fastEdits,
		FullRebuilds:     m.fullRebuilds,
		UnitsInvalidated: m.unitsInvalidated,
		ContextsReused:   m.contextsReused,
		JumpReused:       m.jumpReused,
		SubstReused:      m.substReused,
		DeltaBytes:       m.deltaBytes,
	}
	if len(m.entries) > 0 {
		c.PerSession = make(map[string]SessionStatsJSON, len(m.entries))
		for id, e := range m.entries {
			st := e.sess.Stats()
			c.Bytes += e.bytes
			c.PerSession[id] = SessionStatsJSON{
				Units:            e.sess.NumUnits(),
				Bytes:            e.bytes,
				IdleSeconds:      now.Sub(e.lastUsed).Seconds(),
				Edits:            st.Edits,
				FastEdits:        st.FastEdits,
				FullRebuilds:     st.FullRebuilds,
				UnitsInvalidated: st.UnitsInvalidated,
				ContextHits:      st.ContextHits,
				ContextMisses:    st.ContextMisses,
				JumpReused:       st.JumpReused,
				SubstReused:      st.SubstReused,
				DeltaBytes:       st.DeltaBytes,
			}
		}
	}
	return c
}

// ---------------------------------------------------------------------
// Handlers

// handleSessions serves POST /v1/sessions (open).
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.writeError(w, http.StatusServiceUnavailable, "handler-panic", fmt.Sprint(rec))
		}
	}()
	if s.sessions == nil {
		s.writeError(w, http.StatusNotFound, "bad-request", "session API disabled")
		return
	}
	if r.Method != http.MethodPost {
		s.stats.badRequests.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	if s.draining.Load() {
		s.stats.drainRejects.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.cfg.DrainTimeout))
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req OpenSessionRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	cfg, err := req.Config.ToIPCP()
	if err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	cfg.Parallelism = s.cfg.AnalysisParallelism
	cfg.FailFast = true
	if req.Filename == "" {
		req.Filename = "request.f"
	}

	// Opening runs a full analysis; take a worker slot like /v1/analyze.
	release, ok := s.acquireWorker(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	sess, err := ipcp.OpenSession(ctx, req.Filename, req.Source, cfg)
	if err != nil {
		s.sessions.openFailed()
		s.writeSessionError(w, err)
		return
	}
	e := &sessionEntry{
		sess: sess,
		cfg:  cfg,
		req:  &AnalyzeRequest{Filename: req.Filename, Want: req.Want},
	}
	id := s.sessions.add(e)
	s.writeJSON(w, http.StatusOK, OpenSessionResponse{
		ID:          id,
		Units:       sess.NumUnits(),
		Fingerprint: sess.Fingerprint(),
	})
}

// handleSessionByID routes /v1/sessions/{id}[/edit|/result].
func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.writeError(w, http.StatusServiceUnavailable, "handler-panic", fmt.Sprint(rec))
		}
	}()
	if s.sessions == nil {
		s.writeError(w, http.StatusNotFound, "bad-request", "session API disabled")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, verb := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, verb = rest[:i], rest[i+1:]
	}
	if id == "" {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "missing session id")
		return
	}
	e := s.sessions.lookup(id)
	if e == nil {
		s.writeError(w, http.StatusNotFound, "not-found", "unknown session "+id)
		return
	}
	switch {
	case verb == "edit" && r.Method == http.MethodPost:
		s.handleSessionEdit(w, r, e)
	case verb == "result" && r.Method == http.MethodGet:
		s.handleSessionResult(w, e)
	case verb == "" && r.Method == http.MethodDelete:
		s.sessions.remove(id)
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "closed", "id": id})
	default:
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusMethodNotAllowed, "method", "unsupported session operation")
		return
	}
}

func (s *Server) handleSessionEdit(w http.ResponseWriter, r *http.Request, e *sessionEntry) {
	if s.draining.Load() {
		s.stats.drainRejects.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.cfg.DrainTimeout))
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req SessionEditRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	release, ok := s.acquireWorker(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	info, err := e.sess.Edit(ctx, req.Edits)
	if err == nil || !errors.Is(err, ipcp.ErrBadEdit) {
		// Invalid edits leave the session untouched; everything else —
		// including an edit that broke the program — changed it.
		s.sessions.afterEdit(e, info, len(req.Edits))
	}
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SessionEditResponse{
		ID:          e.id,
		Info:        info,
		Fingerprint: e.sess.Fingerprint(),
	})
}

func (s *Server) handleSessionResult(w http.ResponseWriter, e *sessionEntry) {
	res, err := e.sess.Result()
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	// Same rendering path as POST /v1/analyze: for equal text and
	// configuration the bodies are byte-identical.
	bodyBytes, degraded := s.renderResult(e.req, e.cfg, res, 0)
	if degraded {
		s.stats.degraded.Add(1)
	} else {
		s.stats.ok.Add(1)
	}
	s.writeRaw(w, http.StatusOK, bodyBytes)
}

// acquireWorker applies the same admission control as /v1/analyze to a
// session request: bounded queue, shed with Retry-After, abandonment
// detection. The returned release must be called when the work is done.
func (s *Server) acquireWorker(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.queued.Add(1) > int64(s.cfg.MaxConcurrency+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.stats.shed.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.shedBackoff()))
		s.writeError(w, http.StatusTooManyRequests, "shed", "work queue full")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.queued.Add(-1)
		s.stats.abandoned.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "canceled", "client went away while queued")
		return nil, false
	}
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		<-s.sem
		s.queued.Add(-1)
	}, true
}

// writeSessionError maps a session failure onto the service's error
// contract: invalid edits are 400s, program diagnostics are 422s, and
// budget/deadline/internal failures are 503s with the breaker classes.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	if errors.Is(err, ipcp.ErrBadEdit) {
		s.stats.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	class, _, userFault := classify(err)
	if userFault {
		s.stats.inputErrors.Add(1)
		s.writeError(w, http.StatusUnprocessableEntity, "input", err.Error())
		return
	}
	s.recordFailureClass(err)
	if class == "exhausted:deadline" {
		s.stats.deadline.Add(1)
	} else {
		s.stats.internal.Add(1)
	}
	s.writeError(w, http.StatusServiceUnavailable, class, err.Error())
}
