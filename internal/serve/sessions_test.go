package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const sessionSrc = `PROGRAM MAIN
CALL TOP(8, 3)
CALL OTHER(5)
END

SUBROUTINE TOP(N, M)
INTEGER N, M
CALL LEAF(N, M)
END

SUBROUTINE LEAF(N, M)
INTEGER N, M
PRINT *, N + M
END

SUBROUTINE OTHER(K)
INTEGER K
PRINT *, K * 2
END
`

func doJSON(t *testing.T, s *Server, method, path string, reqBody interface{}) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if reqBody != nil {
		b, err := json.Marshal(reqBody)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	r := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

func openSession(t *testing.T, s *Server, src string) OpenSessionResponse {
	t.Helper()
	code, body := doJSON(t, s, http.MethodPost, "/v1/sessions", OpenSessionRequest{
		Filename: "prog.f", Source: src, Want: RequestWant{Transformed: true},
	})
	if code != http.StatusOK {
		t.Fatalf("open: %d %s", code, body)
	}
	var resp OpenSessionResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("open body: %v\n%s", err, body)
	}
	return resp
}

func editSession(t *testing.T, s *Server, id string, edits []map[string]interface{}) (int, SessionEditResponse, []byte) {
	t.Helper()
	code, body := doJSON(t, s, http.MethodPost, "/v1/sessions/"+id+"/edit", map[string]interface{}{"edits": edits})
	var resp SessionEditResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("edit body: %v\n%s", err, body)
		}
	}
	return code, resp, body
}

func sessionResult(t *testing.T, s *Server, id string) (int, []byte) {
	t.Helper()
	return doJSON(t, s, http.MethodGet, "/v1/sessions/"+id+"/result", nil)
}

// TestSessionLifecycle: open → edit → result, with the result body
// byte-identical to a cold POST /v1/analyze of the edited text.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(Config{AnalysisCacheBytes: -1, ResultCacheBytes: -1})
	open := openSession(t, s, sessionSrc)
	if open.Units != 4 {
		t.Fatalf("open units = %d, want 4", open.Units)
	}

	leaf := "SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N * M\nEND\n\n"
	code, edit, body := editSession(t, s, open.ID, []map[string]interface{}{
		{"op": "replace", "index": 2, "text": leaf},
	})
	if code != http.StatusOK {
		t.Fatalf("edit: %d %s", code, body)
	}
	if !edit.Info.FastPath || edit.Info.UnitsInvalidated != 3 {
		t.Fatalf("edit info: %+v", edit.Info)
	}

	code, got := sessionResult(t, s, open.ID)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, got)
	}
	edited := strings.Replace(sessionSrc, "PRINT *, N + M", "PRINT *, N * M", 1)
	coldCode, _, cold := postAnalyze(t, s, AnalyzeRequest{
		Filename: "prog.f", Source: edited, Want: RequestWant{Transformed: true},
	})
	if coldCode != http.StatusOK {
		t.Fatalf("cold analyze: %d %s", coldCode, cold)
	}
	if !bytes.Equal(got, cold) {
		t.Fatalf("session result != cold analyze body\nsession: %s\ncold:    %s", got, cold)
	}

	// /statsz carries the sessions block with nonzero reuse.
	snap := s.Stats()
	if snap.Sessions == nil {
		t.Fatal("no sessions block in stats")
	}
	sc := snap.Sessions
	if sc.Active != 1 || sc.FastEdits != 1 || sc.JumpReused == 0 || sc.UnitsInvalidated != 3 || sc.DeltaBytes != int64(len(leaf)) {
		t.Fatalf("session counters: %+v", sc)
	}
	if len(sc.PerSession) != 1 || sc.PerSession[open.ID].Edits != 1 {
		t.Fatalf("per-session stats: %+v", sc.PerSession)
	}

	// Close; the id is gone.
	if code, body := doJSON(t, s, http.MethodDelete, "/v1/sessions/"+open.ID, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, _ := sessionResult(t, s, open.ID); code != http.StatusNotFound {
		t.Fatalf("result after close: %d, want 404", code)
	}
}

// TestSessionErrors: invalid configs, bad edits, broken programs, and
// unknown ids map onto the service's error contract.
func TestSessionErrors(t *testing.T) {
	s := newTestServer(Config{})

	// Open of a program with diagnostics: 422, no session created.
	code, body := doJSON(t, s, http.MethodPost, "/v1/sessions", OpenSessionRequest{
		Filename: "bad.f", Source: "GIBBERISH",
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("broken open: %d %s", code, body)
	}
	if snap := s.Stats(); snap.Sessions.OpenFailures != 1 || snap.Sessions.Active != 0 {
		t.Fatalf("open-failure counters: %+v", snap.Sessions)
	}

	open := openSession(t, s, sessionSrc)

	// Out-of-range index: 400, session untouched.
	if code, _, body := editSession(t, s, open.ID, []map[string]interface{}{
		{"op": "replace", "index": 42, "text": "X"},
	}); code != http.StatusBadRequest {
		t.Fatalf("bad index: %d %s", code, body)
	}

	// An edit that breaks the program: 422, session enters error state...
	if code, _, body := editSession(t, s, open.ID, []map[string]interface{}{
		{"op": "replace", "index": 2, "text": "SUBROUTINE LEAF(N\nEND\n"},
	}); code != http.StatusUnprocessableEntity {
		t.Fatalf("breaking edit: %d %s", code, body)
	}
	if code, body := sessionResult(t, s, open.ID); code != http.StatusUnprocessableEntity {
		t.Fatalf("result in error state: %d %s", code, body)
	}
	// ...and a repair edit brings it back.
	leaf := "SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N - M\nEND\n\n"
	if code, _, body := editSession(t, s, open.ID, []map[string]interface{}{
		{"op": "replace", "index": 2, "text": leaf},
	}); code != http.StatusOK {
		t.Fatalf("repair edit: %d %s", code, body)
	}
	if code, body := sessionResult(t, s, open.ID); code != http.StatusOK {
		t.Fatalf("result after repair: %d %s", code, body)
	}

	// Unknown session id.
	if code, _ := sessionResult(t, s, "s-999"); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", code)
	}
}

// TestSessionEviction: the LRU count limit, the byte budget, and the
// TTL each evict with their own counter.
func TestSessionEviction(t *testing.T) {
	s := newTestServer(Config{SessionLimit: 2})
	a := openSession(t, s, sessionSrc)
	b := openSession(t, s, sessionSrc)
	// Touch a so b is the LRU victim when c arrives.
	if code, _ := sessionResult(t, s, a.ID); code != http.StatusOK {
		t.Fatal("touch a")
	}
	c := openSession(t, s, sessionSrc)
	snap := s.Stats()
	if snap.Sessions.Active != 2 || snap.Sessions.EvictedLRU != 1 {
		t.Fatalf("after LRU eviction: %+v", snap.Sessions)
	}
	if code, _ := sessionResult(t, s, b.ID); code != http.StatusNotFound {
		t.Fatal("LRU victim still resident")
	}
	for _, id := range []string{a.ID, c.ID} {
		if code, _ := sessionResult(t, s, id); code != http.StatusOK {
			t.Fatalf("survivor %s gone", id)
		}
	}

	// Byte budget: a tiny budget evicts the older session on open.
	s2 := newTestServer(Config{SessionLimit: 8, SessionBytes: 1})
	d := openSession(t, s2, sessionSrc)
	openSession(t, s2, sessionSrc)
	snap2 := s2.Stats()
	if snap2.Sessions.EvictedBytes != 1 || snap2.Sessions.Active != 1 {
		t.Fatalf("after byte eviction: %+v", snap2.Sessions)
	}
	if code, _ := sessionResult(t, s2, d.ID); code != http.StatusNotFound {
		t.Fatal("byte-budget victim still resident")
	}

	// TTL: an idle session expires.
	s3 := newTestServer(Config{SessionTTL: time.Nanosecond})
	e := openSession(t, s3, sessionSrc)
	time.Sleep(2 * time.Millisecond)
	if code, _ := sessionResult(t, s3, e.ID); code != http.StatusNotFound {
		t.Fatal("expired session still resident")
	}
	if snap3 := s3.Stats(); snap3.Sessions.ExpiredTTL != 1 {
		t.Fatalf("TTL counters: %+v", snap3.Sessions)
	}
}

// TestSessionAPIDisabled: SessionLimit < 0 turns the endpoints into
// 404s.
func TestSessionAPIDisabled(t *testing.T) {
	s := newTestServer(Config{SessionLimit: -1})
	code, _ := doJSON(t, s, http.MethodPost, "/v1/sessions", OpenSessionRequest{Source: sessionSrc})
	if code != http.StatusNotFound {
		t.Fatalf("open on disabled API: %d, want 404", code)
	}
	if code, _ := sessionResult(t, s, "s-1"); code != http.StatusNotFound {
		t.Fatalf("result on disabled API: %d, want 404", code)
	}
	if snap := s.Stats(); snap.Sessions != nil {
		t.Fatal("sessions block present with API disabled")
	}
}

// TestSessionContextReuseAcrossEdits: repeated one-unit edits keep
// reusing value contexts; the counters in /statsz prove it (this is
// the assertion the CI sessions-smoke job makes over HTTP).
func TestSessionContextReuseAcrossEdits(t *testing.T) {
	s := newTestServer(Config{})
	open := openSession(t, s, sessionSrc)
	for i := 0; i < 3; i++ {
		leaf := fmt.Sprintf("SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N + M + %d\nEND\n\n", i)
		code, edit, body := editSession(t, s, open.ID, []map[string]interface{}{
			{"op": "replace", "index": 2, "text": leaf},
		})
		if code != http.StatusOK {
			t.Fatalf("edit %d: %d %s", i, code, body)
		}
		if !edit.Info.FastPath {
			t.Fatalf("edit %d took the slow path", i)
		}
	}
	snap := s.Stats()
	if snap.Sessions.ContextsReused == 0 {
		t.Fatalf("no value-context reuse across edits: %+v", snap.Sessions)
	}
	if ps := snap.Sessions.PerSession[open.ID]; ps.ContextHits == 0 {
		t.Fatalf("per-session context hits zero: %+v", ps)
	}
}
