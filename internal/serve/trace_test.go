package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// statszSnapshot fetches and decodes /statsz.
func statszSnapshot(t *testing.T, s *Server) StatsSnapshot {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/statsz: status = %d", w.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/statsz body: %v\n%s", err, w.Body.Bytes())
	}
	return snap
}

// TestStatsPhaseLatencies: every 200 response folds its per-phase wall
// times into /statsz's phase_latencies aggregates. The default server
// runs analyses through the incremental cache, so the phases are the
// cached pipeline's (lookup subsumes parse and sem).
func TestStatsPhaseLatencies(t *testing.T) {
	s := newTestServer(Config{})

	if snap := statszSnapshot(t, s); len(snap.PhaseLatencies) != 0 {
		t.Fatalf("phase latencies before any traffic: %+v", snap.PhaseLatencies)
	}

	// Two distinct programs, so the second is not a result-cache replay.
	second := "PROGRAM Q\nCALL WORK(3, 4)\nEND\nSUBROUTINE WORK(N, M)\nINTEGER N, M\nPRINT *, N * M\nEND\n"
	for _, src := range []string{okSrc, second} {
		if code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: src}); code != http.StatusOK {
			t.Fatalf("status = %d, body %s", code, body)
		}
	}

	snap := statszSnapshot(t, s)
	for _, ph := range []string{"lookup", "graph", "jump", "solve", "subst", "assemble"} {
		agg, ok := snap.PhaseLatencies[ph]
		if !ok {
			t.Errorf("phase_latencies missing %q: %+v", ph, snap.PhaseLatencies)
			continue
		}
		if agg.Count != 2 {
			t.Errorf("%s: count = %d, want 2", ph, agg.Count)
		}
		if agg.TotalNs < 0 || agg.MaxNs < 0 || agg.MaxNs > agg.TotalNs {
			t.Errorf("%s: inconsistent aggregate %+v", ph, agg)
		}
	}

	// A result-cache replay serves stored bytes without re-analyzing,
	// so it must not inflate the aggregates.
	if code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc}); code != http.StatusOK {
		t.Fatalf("replay status = %d, body %s", code, body)
	}
	replay := statszSnapshot(t, s)
	if got := replay.PhaseLatencies["solve"].Count; got != 2 {
		t.Errorf("solve count after replay = %d, want 2 (replays bypass analysis)", got)
	}
}
