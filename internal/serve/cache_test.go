package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestResultCacheReplay: a repeated clean request is served from the
// result cache byte-for-byte, and the counters in /statsz say so.
func TestResultCacheReplay(t *testing.T) {
	s := newTestServer(Config{})
	req := AnalyzeRequest{Source: okSrc, Want: RequestWant{JumpFunctions: true}}

	code1, _, body1 := postAnalyze(t, s, req)
	code2, _, body2 := postAnalyze(t, s, req)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d then %d, want 200 both times", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached replay differs from original:\n%s\nvs\n%s", body1, body2)
	}
	st := s.Stats()
	if st.ResultCache == nil {
		t.Fatal("result cache counters missing")
	}
	if st.ResultCache.Hits != 1 || st.ResultCache.Misses != 1 || st.ResultCache.Entries != 1 {
		t.Errorf("result cache counters = %+v, want 1 hit, 1 miss, 1 entry", *st.ResultCache)
	}
	if st.AnalysisCache == nil || st.AnalysisCache.Misses == 0 {
		t.Errorf("analysis cache never consulted: %+v", st.AnalysisCache)
	}

	// A different configuration axis or want flag is a different slot.
	if code, _, _ := postAnalyze(t, s, AnalyzeRequest{Source: okSrc}); code != http.StatusOK {
		t.Fatalf("variant request: status %d", code)
	}
	if st := s.Stats(); st.ResultCache.Entries != 2 {
		t.Errorf("variant request shared a cache slot: %+v", *st.ResultCache)
	}
}

// TestResultCacheSkipsDegraded: a degraded response (expression-size
// truncation) must not be stored — every such request re-analyzes.
func TestResultCacheSkipsDegraded(t *testing.T) {
	s := newTestServer(Config{})
	req := AnalyzeRequest{Source: okSrc, Config: RequestConfig{Kind: "polynomial", MaxExprSize: 1}}

	for i := 0; i < 2; i++ {
		code, _, body := postAnalyze(t, s, req)
		if code != http.StatusOK {
			t.Fatalf("status %d body %s", code, body)
		}
		if r := decodeResult(t, body); r.Status != "degraded" {
			t.Fatalf("status %q, want degraded (truncation)", r.Status)
		}
	}
	st := s.Stats()
	if st.ResultCache.Hits != 0 || st.ResultCache.Entries != 0 {
		t.Errorf("degraded response was cached: %+v", *st.ResultCache)
	}
}

// TestCachesDisabled: negative budgets switch both layers off; requests
// still work and /statsz omits the counters.
func TestCachesDisabled(t *testing.T) {
	s := newTestServer(Config{AnalysisCacheBytes: -1, ResultCacheBytes: -1})
	for i := 0; i < 2; i++ {
		if code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: okSrc}); code != http.StatusOK {
			t.Fatalf("status %d body %s", code, body)
		}
	}
	st := s.Stats()
	if st.ResultCache != nil || st.AnalysisCache != nil {
		t.Errorf("disabled caches still report counters: %+v / %+v", st.ResultCache, st.AnalysisCache)
	}
	if st.OK != 2 {
		t.Errorf("ok = %d, want 2", st.OK)
	}
}

// TestResultCacheEviction: a tiny byte budget forces LRU eviction while
// every response stays correct.
func TestResultCacheEviction(t *testing.T) {
	s := newTestServer(Config{ResultCacheBytes: 2048})
	reqs := []AnalyzeRequest{
		{Source: okSrc},
		{Source: okSrc, Want: RequestWant{Transformed: true}},
		{Source: okSrc, Want: RequestWant{JumpFunctions: true, Transformed: true}},
		{Source: okSrc, Config: RequestConfig{Kind: "polynomial"}},
	}
	for round := 0; round < 3; round++ {
		for _, r := range reqs {
			if code, _, body := postAnalyze(t, s, r); code != http.StatusOK {
				t.Fatalf("status %d body %s", code, body)
			}
		}
	}
	st := s.Stats()
	if st.ResultCache.Evictions == 0 {
		t.Errorf("no evictions under a 2 KiB budget: %+v", *st.ResultCache)
	}
	if st.ResultCache.Bytes > 4096 {
		t.Errorf("cache bytes %d far above budget", st.ResultCache.Bytes)
	}
}

// TestPprofGate: the profiling endpoints exist only when EnablePprof is
// set.
func TestPprofGate(t *testing.T) {
	get := func(s *Server, path string) int {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		return w.Code
	}
	if code := get(newTestServer(Config{}), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof reachable without the flag: status %d", code)
	}
	if code := get(newTestServer(Config{EnablePprof: true}), "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index with EnablePprof: status %d, want 200", code)
	}
}
