package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

const domainSrc = `PROGRAM MAIN
CALL S(3)
CALL S(7)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`

// TestAnalyzeDomainSelector: each registered non-constant domain is
// reachable over /v1/analyze, surfaces its facts, and names itself in
// the served-configuration string.
func TestAnalyzeDomainSelector(t *testing.T) {
	s := newTestServer(Config{})
	wantFact := map[string]string{
		"interval":   "[3,7]",
		"parity":     "odd",
		"taint":      "clean",
		"cond-const": "",
	}
	for dom, want := range wantFact {
		code, _, body := postAnalyze(t, s, AnalyzeRequest{
			Source: domainSrc,
			Config: RequestConfig{Domain: dom},
		})
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", dom, code, body)
		}
		resp := decodeResult(t, body)
		if resp.Domain != dom {
			t.Errorf("%s: response domain = %q", dom, resp.Domain)
		}
		var got string
		for _, f := range resp.Facts["S"] {
			if f.Name == "N" {
				got = f.Value
			}
		}
		if got != want {
			t.Errorf("%s: S.N fact = %q, want %q", dom, got, want)
		}
	}
}

// TestAnalyzeDomainConstOmitted: the default constant domain keeps the
// pre-domain wire shape — no domain or facts keys at all.
func TestAnalyzeDomainConstOmitted(t *testing.T) {
	s := newTestServer(Config{})
	for _, dom := range []string{"", "const"} {
		code, _, body := postAnalyze(t, s, AnalyzeRequest{
			Source: domainSrc,
			Config: RequestConfig{Domain: dom},
		})
		if code != http.StatusOK {
			t.Fatalf("%q: status = %d", dom, code)
		}
		for _, key := range []string{`"domain"`, `"facts"`} {
			if bytes.Contains(body, []byte(key)) {
				t.Errorf("%q: const response contains %s:\n%s", dom, key, body)
			}
		}
	}
}

// TestAnalyzeUnknownDomainRejected: a typo'd domain is a 400 naming the
// available ones, not a silent fall-back to constants.
func TestAnalyzeUnknownDomainRejected(t *testing.T) {
	s := newTestServer(Config{})
	code, _, body := postAnalyze(t, s, AnalyzeRequest{
		Source: domainSrc,
		Config: RequestConfig{Domain: "octagon"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, body)
	}
	if e := decodeError(t, body); e.Class != "bad-request" {
		t.Errorf("error class = %q, want bad-request", e.Class)
	}
}

// TestDomainResultCacheKeyed: the result cache must not serve an
// interval response for a const request (or vice versa).
func TestDomainResultCacheKeyed(t *testing.T) {
	s := newTestServer(Config{ResultCacheBytes: 1 << 20})
	_, _, first := postAnalyze(t, s, AnalyzeRequest{Source: domainSrc})
	_, _, second := postAnalyze(t, s, AnalyzeRequest{
		Source: domainSrc,
		Config: RequestConfig{Domain: "interval"},
	})
	if string(first) == string(second) {
		t.Fatal("interval response identical to const response — cache key ignores domain")
	}
	if resp := decodeResult(t, second); resp.Domain != "interval" {
		t.Errorf("second response domain = %q, want interval", resp.Domain)
	}
}

// TestSessionDomainFacts: a session opened under a non-constant domain
// renders its facts through the same path as /v1/analyze.
func TestSessionDomainFacts(t *testing.T) {
	s := newTestServer(Config{})
	code, body := doJSON(t, s, http.MethodPost, "/v1/sessions", OpenSessionRequest{
		Filename: "prog.f", Source: domainSrc,
		Config: RequestConfig{Domain: "interval"},
	})
	if code != http.StatusOK {
		t.Fatalf("open: %d %s", code, body)
	}
	var open OpenSessionResponse
	if err := json.Unmarshal(body, &open); err != nil {
		t.Fatal(err)
	}
	code, body = doJSON(t, s, http.MethodGet, "/v1/sessions/"+open.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	resp := decodeResult(t, body)
	if resp.Domain != "interval" {
		t.Errorf("session result domain = %q, want interval", resp.Domain)
	}
	var got string
	for _, f := range resp.Facts["S"] {
		if f.Name == "N" {
			got = f.Value
		}
	}
	if got != "[3,7]" {
		t.Errorf("session S.N fact = %q, want [3,7]", got)
	}
}
