package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/jobs"
	"repro/ipcp"
)

// jobsTestServer is newTestServer with the durable job API enabled in
// a per-test temp directory; the manager is crash-killed on cleanup so
// its workers never outlive the test.
func jobsTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.JobsDir == "" {
		cfg.JobsDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.sleep = func(ctx context.Context, d time.Duration) {}
	t.Cleanup(func() { s.jobs.Kill() })
	return s
}

func doReq(s *Server, method, path string, body []byte) (int, http.Header, []byte) {
	r := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w.Code, w.Header(), w.Body.Bytes()
}

func submitJobs(t *testing.T, s *Server, req JobSubmitRequest) JobSubmitResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, _, data := doReq(s, http.MethodPost, "/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", code, data)
	}
	var resp JobSubmitResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("submit body: %v\n%s", err, data)
	}
	return resp
}

// waitJobTerminal polls GET /v1/jobs/{id} until the job reaches a
// terminal state.
func waitJobTerminal(t *testing.T, s *Server, id string) jobs.JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, data := doReq(s, http.MethodGet, "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status = %d, body %s", id, code, data)
		}
		var v jobs.JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("poll %s: %v\n%s", id, err, data)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// uniqueJobSrc yields a valid program whose fingerprint differs per n,
// so tests control dedupe explicitly.
func uniqueJobSrc(n int) string {
	return fmt.Sprintf("PROGRAM P\nINTEGER I\nI = %d\nCALL Q(I)\nEND\nSUBROUTINE Q(N)\nINTEGER N\nPRINT *, N\nEND\n", n)
}

// TestJobsDisabledWithoutDir: without a jobs directory every job
// endpoint answers 404 so probes cannot mistake "absent" for "empty".
func TestJobsDisabledWithoutDir(t *testing.T) {
	s := newTestServer(Config{})
	for _, path := range []string{"/v1/jobs", "/v1/jobs/abc", "/v1/jobs/abc/result", "/v1/jobs/watch"} {
		code, _, body := doReq(s, http.MethodGet, path, nil)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status = %d, body %s", path, code, body)
		}
		if eb := decodeError(t, body); eb.Class != "not-found" {
			t.Errorf("GET %s: class = %q", path, eb.Class)
		}
	}
}

// TestJobSubmitPollResult: the core exactly-once-observable contract
// at the HTTP layer. A submitted batch acks every job, each reaches a
// terminal state, and /result replays bytes identical to what the
// synchronous endpoint returns for the same request — including the
// 422 verdict for a program with diagnostics.
func TestJobSubmitPollResult(t *testing.T) {
	s := jobsTestServer(t, Config{})
	badSrc := "PROGRAM P\nCALL NOPE(1)\nEND\n"

	resp := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{
		{Source: okSrc},
		{Source: badSrc},
	}})
	if len(resp.Jobs) != 2 || resp.Tenant != jobs.DefaultTenant {
		t.Fatalf("acks: %+v", resp)
	}
	if resp.Jobs[0].ID == resp.Jobs[1].ID {
		t.Fatalf("distinct jobs shared an ID: %+v", resp.Jobs)
	}

	ok := waitJobTerminal(t, s, resp.Jobs[0].ID)
	if ok.State != jobs.StateDone || ok.Code != http.StatusOK {
		t.Fatalf("ok job: %+v", ok)
	}
	bad := waitJobTerminal(t, s, resp.Jobs[1].ID)
	if bad.State != jobs.StateDone || bad.Code != http.StatusUnprocessableEntity {
		t.Fatalf("diagnostic job must be done with the 422 verdict: %+v", bad)
	}

	// Byte identity against the synchronous reference.
	code, _, jobBody := doReq(s, http.MethodGet, "/v1/jobs/"+resp.Jobs[0].ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result status = %d, body %s", code, jobBody)
	}
	syncCode, _, syncBody := postAnalyze(t, s, AnalyzeRequest{Source: okSrc})
	if syncCode != http.StatusOK || !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("job result differs from synchronous bytes:\njob:  %s\nsync: %s", jobBody, syncBody)
	}
	code, _, jobBody = doReq(s, http.MethodGet, "/v1/jobs/"+resp.Jobs[1].ID+"/result", nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("422 result status = %d, body %s", code, jobBody)
	}
	syncCode, _, syncBody = postAnalyze(t, s, AnalyzeRequest{Source: badSrc})
	if syncCode != http.StatusUnprocessableEntity || !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("job 422 differs from synchronous bytes:\njob:  %s\nsync: %s", jobBody, syncBody)
	}

	// List and stats see both jobs.
	code, _, data := doReq(s, http.MethodGet, "/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	var list JobListResponse
	if err := json.Unmarshal(data, &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("list: %v\n%s", err, data)
	}
	st := s.Stats()
	if st.Jobs == nil || st.Jobs.Submitted != 2 || st.Jobs.Done != 2 {
		t.Fatalf("/statsz jobs block: %+v", st.Jobs)
	}
}

// TestJobSubmitValidation: a batch is validated whole before anything
// is journaled — bad entries reject the batch with a 400 naming the
// offending index, and nothing is enqueued.
func TestJobSubmitValidation(t *testing.T) {
	s := jobsTestServer(t, Config{})
	cases := []struct {
		name string
		body []byte
	}{
		{"bad JSON", []byte("{nope")},
		{"empty batch", mustJSONBody(t, JobSubmitRequest{})},
		{"bad config enum", mustJSONBody(t, JobSubmitRequest{Jobs: []AnalyzeRequest{
			{Source: okSrc},
			{Source: okSrc, Config: RequestConfig{Kind: "psychic"}},
		}})},
	}
	for _, tc := range cases {
		code, _, body := doReq(s, http.MethodPost, "/v1/jobs", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", tc.name, code, body)
		}
	}
	if code, hdr, _ := doReq(s, http.MethodPut, "/v1/jobs", nil); code != http.StatusMethodNotAllowed || hdr.Get("Allow") == "" {
		t.Errorf("PUT: status = %d, Allow = %q", code, hdr.Get("Allow"))
	}
	if st := s.jobs.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected batches must journal nothing: %+v", st)
	}
}

// TestJobDedupe: resubmitting a spec already queued, running, or done
// returns the original job's ack (Deduped) instead of re-running it —
// within a batch and across batches.
func TestJobDedupe(t *testing.T) {
	s := jobsTestServer(t, Config{})
	resp := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{
		{Source: okSrc},
		{Source: okSrc},
	}})
	if resp.Jobs[1].ID != resp.Jobs[0].ID || !resp.Jobs[1].Deduped {
		t.Fatalf("in-batch duplicate not deduped: %+v", resp.Jobs)
	}
	waitJobTerminal(t, s, resp.Jobs[0].ID)
	again := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: okSrc}}})
	if again.Jobs[0].ID != resp.Jobs[0].ID || !again.Jobs[0].Deduped {
		t.Fatalf("cross-batch duplicate not deduped: %+v", again.Jobs)
	}
	if st := s.jobs.Stats(); st.Submitted != 1 || st.Deduped != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestJobQuota429: a tenant past its queued-jobs quota gets a whole-
// batch 429 with class "shed" and a Retry-After of at least one second
// — never 0, which would invite a tight retry loop.
func TestJobQuota429(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		<-release
		return nil
	})
	defer remove()
	defer close(release)

	s := jobsTestServer(t, Config{JobWorkers: 1, JobQuota: ipcp.TenantQuota{MaxQueued: 1}})

	// First job occupies the worker; second fills the queue quota.
	a := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: uniqueJobSrc(1)}}})
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, data := doReq(s, http.MethodGet, "/v1/jobs/"+a.Jobs[0].ID, nil)
		var v jobs.JobView
		if code == http.StatusOK {
			json.Unmarshal(data, &v)
		}
		if v.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %s", data)
		}
		time.Sleep(time.Millisecond)
	}
	submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: uniqueJobSrc(2)}}})

	body := mustJSONBody(t, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: uniqueJobSrc(3)}}})
	code, hdr, data := doReq(s, http.MethodPost, "/v1/jobs", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", code, data)
	}
	if eb := decodeError(t, data); eb.Class != "shed" {
		t.Fatalf("class = %q, body %s", eb.Class, data)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if st := s.jobs.Stats(); st.QuotaRejections != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestJobCancelEndpoint: DELETE cancels a queued job, its result
// endpoint answers 410, and unknown IDs answer 404.
func TestJobCancelEndpoint(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		<-release
		return nil
	})
	defer remove()
	defer close(release)

	s := jobsTestServer(t, Config{JobWorkers: 1})
	parked := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: uniqueJobSrc(10)}}})
	_ = parked
	queued := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{{Source: uniqueJobSrc(11)}}})

	code, _, data := doReq(s, http.MethodDelete, "/v1/jobs/"+queued.Jobs[0].ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel status = %d, body %s", code, data)
	}
	var v jobs.JobView
	if err := json.Unmarshal(data, &v); err != nil || v.State != jobs.StateCanceled {
		t.Fatalf("cancel view: %v\n%s", err, data)
	}
	code, _, data = doReq(s, http.MethodGet, "/v1/jobs/"+queued.Jobs[0].ID+"/result", nil)
	if code != http.StatusGone {
		t.Fatalf("canceled result status = %d, body %s", code, data)
	}
	if eb := decodeError(t, data); eb.Class != "canceled" {
		t.Fatalf("class = %q", eb.Class)
	}
	if code, _, _ := doReq(s, http.MethodDelete, "/v1/jobs/no-such-job", nil); code != http.StatusNotFound {
		t.Fatalf("unknown cancel status = %d", code)
	}
}

// TestJobsWatch: the NDJSON stream emits each job's states and closes
// once everything it watches is terminal; every line is a JobView.
func TestJobsWatch(t *testing.T) {
	s := jobsTestServer(t, Config{})
	resp := submitJobs(t, s, JobSubmitRequest{Jobs: []AnalyzeRequest{
		{Source: uniqueJobSrc(20)},
		{Source: uniqueJobSrc(21)},
	}})
	code, hdr, data := doReq(s, http.MethodGet, "/v1/jobs/watch", nil)
	if code != http.StatusOK {
		t.Fatalf("watch status = %d, body %s", code, data)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	final := map[string]jobs.State{}
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var v jobs.JobView
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		final[v.ID] = v.State
	}
	for _, ack := range resp.Jobs {
		if st := final[ack.ID]; !st.Terminal() {
			t.Fatalf("watch ended with job %s in state %q", ack.ID, st)
		}
	}
}

// TestShedRetryAfterFloor (satellite): even when the latency EWMA is
// tiny — a warm cache makes analyses take microseconds — a shed client
// is never told "Retry-After: 0". The floor holds end to end: header
// on a real shed response, and the derivation itself.
func TestShedRetryAfterFloor(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer remove()

	s := newTestServer(Config{MaxConcurrency: 1, QueueDepth: 1})
	// Sub-millisecond EWMA: the unfloored estimate (2 rounds x 50µs)
	// would round to 0 seconds.
	s.stats.latencyEWMA.Store(int64(50 * time.Microsecond))
	if d := s.shedBackoff(); d < time.Second {
		t.Fatalf("shedBackoff() = %v with tiny EWMA, want >= 1s", d)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			postAnalyze(t, s, AnalyzeRequest{Source: uniqueJobSrc(30 + n)})
		}(i)
	}
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr, body := postAnalyze(t, s, AnalyzeRequest{Source: uniqueJobSrc(99)})
	close(release)
	wg.Wait()
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", code, body)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
}

// TestDrainServesParkedQueuedRequests (satellite): requests that were
// admitted and are waiting for a worker slot — parked in the queue,
// not in flight — when the drain begins must still be served, while
// requests arriving after the flip are refused with class "draining".
func TestDrainServesParkedQueuedRequests(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	remove := guard.Set("solve", func() error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	})
	defer remove()

	s := newTestServer(Config{MaxConcurrency: 1, QueueDepth: 2})
	codes := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			code, _, _ := postAnalyze(t, s, AnalyzeRequest{Source: uniqueJobSrc(40 + n)})
			codes[n] = code
		}(i)
	}
	// One request is in flight (parked in the analyzer); the other two
	// are queued waiting for the worker slot.
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 3", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	// New arrivals are refused immediately...
	code, _, body := postAnalyze(t, s, AnalyzeRequest{Source: uniqueJobSrc(50)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, body %s", code, body)
	}
	if eb := decodeError(t, body); eb.Class != "draining" {
		t.Fatalf("post-drain class = %q", eb.Class)
	}
	// ...but the parked requests all complete once the worker frees up.
	close(release)
	wg.Wait()
	for n, code := range codes {
		if code != http.StatusOK {
			t.Errorf("parked request %d: status = %d, want 200", n, code)
		}
	}
	st := s.Stats()
	if st.OK != 3 || st.DrainRejects != 1 {
		t.Fatalf("stats after drain: ok=%d drainRejects=%d", st.OK, st.DrainRejects)
	}
}

func mustJSONBody(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
