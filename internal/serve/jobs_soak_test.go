package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/jobs"
)

// TestJobsCrashSoak is the durable-queue acceptance harness: a batch
// of jobs is acknowledged once, then the server is hard-killed
// (Close — the WAL is left exactly as kill -9 would leave it) and
// rebooted on the same directory several times while the batch is
// still executing. The crash-safety claims under test:
//
//   - every acknowledged job reaches a terminal state — no job is
//     lost, no matter which crash interrupted it where;
//   - every completed job's stored result is byte-identical to what
//     the synchronous endpoint answers for the same request, replay
//     and re-execution included (exactly-once-observable);
//   - jobs whose every attempt fails land in poison quarantine with
//     an attributed error class instead of retrying forever;
//   - resubmitting the batch after the dust settles dedupes onto the
//     surviving jobs rather than re-running them.
//
// The default run does 3 kill/reboot cycles; `make soak-jobs` scales
// it up via IPCP_JOBS_SOAK_KILLS.
func TestJobsCrashSoak(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	// Stretch each analysis so kills land mid-batch, not after it.
	remove := guard.Set("solve", func() error {
		time.Sleep(300 * time.Microsecond)
		return nil
	})
	defer remove()

	kills := 3
	if v := os.Getenv("IPCP_JOBS_SOAK_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("IPCP_JOBS_SOAK_KILLS: bad value %q", v)
		}
		kills = n
	}
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	jcfg := Config{JobsDir: dir, JobWorkers: 2}

	// The workload: clean analyses, deterministic 422 verdicts, and
	// poison pills whose solver budget can never suffice, so every
	// attempt fails transiently until quarantine.
	type spec struct {
		req  AnalyzeRequest
		kind string // ok | input | poison
	}
	var specs []spec
	for i := 0; i < 18; i++ {
		specs = append(specs, spec{AnalyzeRequest{Source: uniqueJobSrc(100 + i)}, "ok"})
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, spec{AnalyzeRequest{
			Source: "PROGRAM P\nCALL NOPE(" + strconv.Itoa(i) + ")\nEND\n"}, "input"})
	}
	for i := 0; i < 3; i++ {
		// Two call sites force at least two jump-function evaluations, so
		// a one-step solver budget exhausts at every rung of the
		// degradation ladder (degradeConfig never relaxes the budget).
		specs = append(specs, spec{AnalyzeRequest{
			Source: "PROGRAM P\nINTEGER I\nI = " + strconv.Itoa(200+i) +
				"\nCALL Q(I)\nCALL Q(I)\nEND\nSUBROUTINE Q(N)\nINTEGER N\nPRINT *, N\nEND\n",
			Config: RequestConfig{MaxSolverSteps: 1}}, "poison"})
	}

	// Single-shot synchronous reference answers, from a jobless server.
	ref := newTestServer(Config{})
	refCode := make([]int, len(specs))
	refBody := make([][]byte, len(specs))
	for i, sp := range specs {
		if sp.kind == "poison" {
			continue
		}
		refCode[i], _, refBody[i] = postAnalyze(t, ref, sp.req)
	}

	// Boot 1: submit the whole batch, get the only acks there will be.
	s, err := New(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := JobSubmitRequest{Jobs: make([]AnalyzeRequest, len(specs))}
	for i, sp := range specs {
		batch.Jobs[i] = sp.req
	}
	acks := submitJobs(t, s, batch)
	if len(acks.Jobs) != len(specs) {
		t.Fatalf("acked %d of %d jobs", len(acks.Jobs), len(specs))
	}

	// Kill/reboot cycles while the batch executes.
	for k := 0; k < kills; k++ {
		time.Sleep(time.Duration(3+rng.Intn(7)) * time.Millisecond)
		if err := s.Close(); err != nil {
			t.Fatalf("kill %d: %v", k, err)
		}
		s, err = New(jcfg)
		if err != nil {
			t.Fatalf("reboot %d: the WAL a crash left behind must replay: %v", k, err)
		}
	}
	defer s.Close()
	if st := s.Stats(); st.Jobs == nil || st.Jobs.WAL.ReplayedRecords == 0 {
		t.Fatalf("final boot replayed nothing — the kills never interrupted anything: %+v", st.Jobs)
	}

	// Every acked job must reach a terminal state on the final boot.
	for i, ack := range acks.Jobs {
		v := waitJobTerminal(t, s, ack.ID)
		switch specs[i].kind {
		case "ok", "input":
			if v.State != jobs.StateDone || v.Code != refCode[i] {
				t.Fatalf("job %d (%s): %+v, want done with code %d", i, specs[i].kind, v, refCode[i])
			}
			code, _, body := doReq(s, http.MethodGet, "/v1/jobs/"+ack.ID+"/result", nil)
			if code != refCode[i] || !bytes.Equal(body, refBody[i]) {
				t.Fatalf("job %d (%s): result diverged from the synchronous reference\njob:  %d %s\nsync: %d %s",
					i, specs[i].kind, code, body, refCode[i], refBody[i])
			}
		case "poison":
			if v.State != jobs.StatePoisoned {
				t.Fatalf("job %d (poison): %+v, want poisoned", i, v)
			}
			if v.Class == "" || v.Attempts < 1 {
				t.Fatalf("job %d (poison): quarantine must attribute the failure: %+v", i, v)
			}
		}
	}

	// Resubmission dedupes onto the done jobs; the poisoned ones are
	// eligible for a fresh try by design.
	again := submitJobs(t, s, batch)
	for i, ack := range again.Jobs {
		if specs[i].kind == "poison" {
			continue
		}
		if !ack.Deduped || ack.ID != acks.Jobs[i].ID {
			t.Fatalf("job %d (%s): resubmit minted a new job: %+v", i, specs[i].kind, ack)
		}
	}

	st := s.Stats().Jobs
	if st.Poisoned != 3 || st.Done < int64(len(specs)-3) {
		t.Fatalf("final counters: %+v", st)
	}
	var decoded map[string]interface{}
	raw, _ := json.Marshal(st)
	if err := json.Unmarshal(raw, &decoded); err != nil || decoded["wal"] == nil {
		t.Fatalf("jobs stats must serialize with a wal block: %v %s", err, raw)
	}
	t.Logf("soak: %d kills, %d jobs, %d done, %d poisoned, %d retries, %d WAL records replayed on final boot",
		kills, len(specs), st.Done, st.Poisoned, st.Retries, st.WAL.ReplayedRecords)
}
