package source

import (
	"strings"
	"testing"
)

func TestFilePosAndLines(t *testing.T) {
	f := NewFile("a.f", "PROGRAM X\nI = 1\nEND\n")
	if got := f.NumLines(); got != 3 {
		t.Fatalf("NumLines = %d, want 3", got)
	}
	p := f.Pos(0)
	if p.Line != 1 || p.Col != 1 {
		t.Errorf("Pos(0) = %v, want 1:1", p)
	}
	p = f.Pos(10) // start of "I = 1"
	if p.Line != 2 || p.Col != 1 {
		t.Errorf("Pos(10) = %v, want 2:1", p)
	}
	p = f.Pos(12)
	if p.Line != 2 || p.Col != 3 {
		t.Errorf("Pos(12) = %v, want 2:3", p)
	}
	if got := f.Line(2); got != "I = 1" {
		t.Errorf("Line(2) = %q, want %q", got, "I = 1")
	}
	if got := f.Line(99); got != "" {
		t.Errorf("Line(99) = %q, want empty", got)
	}
}

func TestFilePosClamping(t *testing.T) {
	f := NewFile("a.f", "AB")
	if p := f.Pos(-5); p.Offset != 0 {
		t.Errorf("negative offset not clamped: %v", p)
	}
	if p := f.Pos(100); p.Offset != 2 {
		t.Errorf("overlarge offset not clamped: %v", p)
	}
}

func TestEmptyFile(t *testing.T) {
	f := NewFile("e.f", "")
	if f.NumLines() != 1 {
		t.Errorf("NumLines(empty) = %d, want 1", f.NumLines())
	}
	p := f.Pos(0)
	if p.Line != 1 || p.Col != 1 {
		t.Errorf("Pos(0) on empty = %v", p)
	}
}

func TestPositionString(t *testing.T) {
	p := Position{File: "x.f", Line: 3, Col: 7}
	if got := p.String(); got != "x.f:3:7" {
		t.Errorf("String = %q", got)
	}
	var zero Position
	if got := zero.String(); got != "-" {
		t.Errorf("zero position String = %q, want -", got)
	}
	noFile := Position{Line: 2, Col: 1}
	if got := noFile.String(); got != "2:1" {
		t.Errorf("no-file position String = %q", got)
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.Err() != nil {
		t.Error("empty list should have nil Err")
	}
	l.Warnf(Position{Line: 1}, "w1")
	if l.HasErrors() {
		t.Error("warnings alone should not count as errors")
	}
	if l.Err() != nil {
		t.Error("warning-only list should have nil Err")
	}
	l.Errorf(Position{Line: 2, Col: 1, File: "f"}, "bad %s", "thing")
	if !l.HasErrors() {
		t.Error("expected HasErrors after Errorf")
	}
	if l.Err() == nil {
		t.Error("expected non-nil Err")
	}
	if !strings.Contains(l.Error(), "bad thing") {
		t.Errorf("Error() = %q, want it to contain the message", l.Error())
	}
}

func TestErrorListSortAndTruncate(t *testing.T) {
	var l ErrorList
	l.Errorf(Position{File: "b.f", Line: 2}, "second")
	l.Errorf(Position{File: "a.f", Line: 9}, "first-file")
	l.Errorf(Position{File: "a.f", Line: 1, Col: 5}, "early")
	l.Errorf(Position{File: "a.f", Line: 1, Col: 2}, "earlier")
	l.Sort()
	if l.Diags[0].Message != "earlier" || l.Diags[1].Message != "early" {
		t.Errorf("sort order wrong: %v", l.Diags)
	}
	if l.Diags[3].Message != "second" {
		t.Errorf("file order wrong: %v", l.Diags)
	}

	var many ErrorList
	for i := 0; i < 15; i++ {
		many.Errorf(Position{Line: i + 1}, "e")
	}
	if !strings.Contains(many.Error(), "and 5 more") {
		t.Errorf("truncation missing: %q", many.Error())
	}
}

func TestCountNonCommentLines(t *testing.T) {
	src := `C a classic comment
* another classic comment
! modern comment

      I = 1
      CALL FOO(I)
c lower case comment
END`
	if got := CountNonCommentLines(src); got != 3 {
		t.Errorf("CountNonCommentLines = %d, want 3", got)
	}
	if got := CountNonCommentLines(""); got != 0 {
		t.Errorf("CountNonCommentLines(empty) = %d, want 0", got)
	}
}
