// Package source models F77s source text: files, positions, and
// diagnostics. Every later phase reports errors in terms of these
// positions so that a user can trace an analysis result back to a line of
// the original program.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// File is one F77s source file. Line numbers are 1-based, columns are
// 1-based byte offsets within the line.
type File struct {
	Name    string
	Content string

	lineOffsets []int // byte offset of the start of each line
}

// NewFile builds a File and indexes its line starts.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lineOffsets = append(f.lineOffsets, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lineOffsets = append(f.lineOffsets, i+1)
		}
	}
	return f
}

// NumLines reports the number of lines in the file. A trailing newline
// does not start a new (empty) line for counting purposes.
func (f *File) NumLines() int {
	n := len(f.lineOffsets)
	if n > 0 && f.lineOffsets[n-1] == len(f.Content) && len(f.Content) > 0 {
		return n - 1
	}
	return n
}

// Pos converts a byte offset into a Position.
func (f *File) Pos(offset int) Position {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Find the last line start <= offset.
	i := sort.Search(len(f.lineOffsets), func(i int) bool {
		return f.lineOffsets[i] > offset
	}) - 1
	if i < 0 {
		i = 0
	}
	return Position{File: f.Name, Line: i + 1, Col: offset - f.lineOffsets[i] + 1, Offset: offset}
}

// Line returns the text of the 1-based line n, without its newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineOffsets) {
		return ""
	}
	start := f.lineOffsets[n-1]
	end := len(f.Content)
	if n < len(f.lineOffsets) {
		end = f.lineOffsets[n] - 1 // drop the newline
	}
	return strings.TrimRight(f.Content[start:end], "\r")
}

// Position identifies a point in a source file.
type Position struct {
	File   string
	Line   int // 1-based
	Col    int // 1-based
	Offset int // byte offset in the file
}

// IsValid reports whether the position carries real location data.
func (p Position) IsValid() bool { return p.Line > 0 }

func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Severity classifies a diagnostic.
type Severity int

const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is a single compiler message tied to a position.
type Diagnostic struct {
	Pos      Position
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// ErrorList collects diagnostics; it satisfies error when non-empty.
type ErrorList struct {
	Diags []Diagnostic
}

// Errorf appends an error diagnostic.
func (l *ErrorList) Errorf(pos Position, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

// Warnf appends a warning diagnostic.
func (l *ErrorList) Warnf(pos Position, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (l *ErrorList) HasErrors() bool {
	for _, d := range l.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Err returns the list as an error, or nil if it holds no errors.
func (l *ErrorList) Err() error {
	if l == nil || !l.HasErrors() {
		return nil
	}
	return l
}

// Error formats up to the first few diagnostics.
func (l *ErrorList) Error() string {
	var b strings.Builder
	const max = 10
	for i, d := range l.Diags {
		if i == max {
			fmt.Fprintf(&b, "... and %d more", len(l.Diags)-max)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
	}
	if len(l.Diags) == 0 {
		return "no diagnostics"
	}
	return b.String()
}

// Sort orders diagnostics by file, line, column.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		a, b := l.Diags[i].Pos, l.Diags[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}

// CountNonCommentLines reports the number of lines that are neither blank
// nor comments. This is the "line count" metric of Table 1 in the paper
// ("line counts exclude comments and blank lines").
func CountNonCommentLines(content string) int {
	n := 0
	for _, line := range strings.Split(content, "\n") {
		t := strings.TrimSpace(line)
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, "!") {
			continue
		}
		// Classic F77 comment: 'C' or '*' in column 1.
		if line != "" && (line[0] == 'C' || line[0] == 'c' || line[0] == '*') {
			// Heuristic: treat as comment only if followed by space or end,
			// to avoid eating statements in free form (we never start a
			// statement in column 1 with a bare identifier 'C...').
			if len(t) == 1 || line[1] == ' ' || line[1] == '\t' {
				continue
			}
		}
		n++
	}
	return n
}
