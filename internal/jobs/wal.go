// Package jobs is the durable batch + async job subsystem behind the
// service's /v1/jobs API. It owns three things:
//
//   - Durability: every accepted job is journaled to a segmented,
//     checksummed, fsync'd write-ahead log *before* the submission is
//     acknowledged, and every terminal outcome (the exact result
//     bytes included) is journaled before it becomes observable. A
//     process that dies mid-batch — kill -9, OOM, power loss — loses
//     nothing: on restart the log is replayed, jobs that never
//     reached a terminal state re-execute, and jobs that did keep
//     their recorded bytes. Because the analysis is a pure function
//     of (source, config) and results are byte-identical across
//     runs, re-execution is exactly-once-observable: a client cannot
//     tell whether its result came from the first execution or a
//     post-crash replay.
//
//   - Fair scheduling: dispatch is per-tenant weighted fair queueing
//     (virtual-time WFQ) with per-tenant in-flight caps and queue
//     quotas, so one tenant's million-program batch delays a small
//     tenant's two programs by a bounded, weight-proportional amount
//     instead of starving it.
//
//   - Failure containment: transient failures walk the same bounded
//     retry ladder as the synchronous path (one step down the sound
//     degradation chain per attempt); a job that keeps failing is
//     quarantined in the poison state with its attributed error
//     instead of being retried forever; deadlines, TTLs, and
//     cancellation propagate through the ordinary context plumbing;
//     graceful drain checkpoints the queue instead of discarding it.
//
// The package is deliberately free of HTTP: internal/serve supplies
// the Executor (which runs the analyzer and renders response bytes)
// and translates Manager state into the wire API.
package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The on-disk format. Each segment file (wal-<seq>.log) is a run of
// frames: an 8-byte header (payload length, then CRC-32/Castagnoli of
// the payload, both little-endian u32) followed by the JSON payload.
// A torn tail — the frame a crash interrupted — fails its length or
// checksum test and is discarded; everything before it was fsync'd
// and survives. The checkpoint file is a whole-state snapshot written
// atomically (tmp + rename) on graceful drain or segment compaction;
// segments it subsumes are deleted after the rename.
const (
	walSegmentPrefix  = "wal-"
	walSegmentSuffix  = ".log"
	walCheckpointName = "checkpoint.json"
	walFrameHeader    = 8
	// walMaxRecordBytes bounds one record so a corrupt length field
	// cannot ask for an absurd allocation during replay.
	walMaxRecordBytes = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// record is one WAL entry. Type "submit" creates a job; "fail" books
// one failed attempt (so the poison threshold survives a crash);
// "done", "poison", "expire", and "cancel" are terminal.
type record struct {
	T           string          `json:"t"`
	ID          string          `json:"id,omitempty"`
	Tenant      string          `json:"tenant,omitempty"`
	Fingerprint string          `json:"fp,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	SubmittedMs int64           `json:"submitted_ms,omitempty"`
	DeadlineMs  int64           `json:"deadline_ms,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Class       string          `json:"class,omitempty"`
	Error       string          `json:"error,omitempty"`
	Code        int             `json:"code,omitempty"`
	// Body is the exact result bytes. Stored as []byte (base64 in the
	// JSON frame), NOT json.RawMessage: Marshal compacts RawMessage
	// content, which would break the byte-identical replay guarantee.
	Body       []byte `json:"body,omitempty"`
	FinishedMs int64  `json:"finished_ms,omitempty"`
}

const (
	recSubmit = "submit"
	recFail   = "fail"
	recDone   = "done"
	recPoison = "poison"
	recExpire = "expire"
	recCancel = "cancel"
)

// checkpoint is the whole-state snapshot: every retained job reduced
// to the minimal record sequence that rebuilds it, plus the segment
// sequence number it subsumes.
type checkpoint struct {
	Seq     uint64   `json:"seq"`
	Records []record `json:"records"`
}

// walStats are the observability counters surfaced in /statsz.
type walStats struct {
	appends      atomic.Int64
	appendBytes  atomic.Int64
	fsyncs       atomic.Int64
	fsyncTotalNs atomic.Int64
	fsyncMaxNs   atomic.Int64
	checkpoints  atomic.Int64
	replayed     atomic.Int64
	corrupt      atomic.Int64
	segments     atomic.Int64
}

// WALStats is the exported snapshot of the log's counters.
type WALStats struct {
	Segments        int64 `json:"segments"`
	Appends         int64 `json:"appends"`
	AppendedBytes   int64 `json:"appended_bytes"`
	Fsyncs          int64 `json:"fsyncs"`
	FsyncAvgNs      int64 `json:"fsync_avg_ns"`
	FsyncMaxNs      int64 `json:"fsync_max_ns"`
	Checkpoints     int64 `json:"checkpoints"`
	ReplayedRecords int64 `json:"replayed_records"`
	CorruptRecords  int64 `json:"corrupt_records"`
}

// wal is the segmented write-ahead log. It is not internally
// synchronized: the Manager serializes every append and checkpoint
// under its own lock, which is also what makes the checkpoint's
// in-memory snapshot consistent with the log.
type wal struct {
	dir    string
	segMax int64

	f      *os.File
	seq    uint64 // sequence of the open segment
	size   int64  // bytes written to the open segment
	closed bool

	st walStats
}

// openWAL opens (creating if needed) the log in dir and replays it:
// the checkpoint's records first, then every surviving segment in
// order. A fresh segment is opened for new appends, so a truncated
// tail is never appended after.
func openWAL(dir string, segMax int64) (*wal, []record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: creating WAL dir: %w", err)
	}
	w := &wal{dir: dir, segMax: segMax}

	var recs []record
	cpSeq := uint64(0)
	if data, err := os.ReadFile(filepath.Join(dir, walCheckpointName)); err == nil {
		var cp checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			// The checkpoint is written atomically; one that does not
			// parse means the directory is damaged in a way replay
			// cannot paper over. Refuse loudly rather than silently
			// dropping acknowledged jobs.
			return nil, nil, fmt.Errorf("jobs: corrupt WAL checkpoint: %w", err)
		}
		cpSeq = cp.Seq
		recs = append(recs, cp.Records...)
		w.st.replayed.Add(int64(len(cp.Records)))
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("jobs: reading WAL checkpoint: %w", err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	maxSeq := cpSeq
	for _, seg := range segs {
		if seg.seq <= cpSeq {
			// Subsumed by the checkpoint (the delete after the rename
			// did not finish before a crash); safe to drop now.
			_ = os.Remove(seg.path)
			continue
		}
		if seg.seq > maxSeq {
			maxSeq = seg.seq
		}
		segRecs, corrupt, err := readSegment(seg.path)
		if err != nil {
			return nil, nil, err
		}
		w.st.corrupt.Add(corrupt)
		w.st.replayed.Add(int64(len(segRecs)))
		recs = append(recs, segRecs...)
		w.st.segments.Add(1)
	}

	if err := w.openSegment(maxSeq + 1); err != nil {
		return nil, nil, err
	}
	return w, recs, nil
}

type segmentFile struct {
	seq  uint64
	path string
}

func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: listing WAL dir: %w", err)
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, walSegmentPrefix), walSegmentSuffix)
		seq, err := strconv.ParseUint(seqStr, 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segmentFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// readSegment decodes one segment's frames. Decoding stops at the
// first torn or corrupt frame: everything after an unverifiable record
// is unordered noise, and only the final segment's tail can legally be
// torn — corruption elsewhere is surfaced in the corrupt counter so
// operators see it, while every verifiable record is still recovered.
func readSegment(path string) ([]record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: reading WAL segment: %w", err)
	}
	var recs []record
	var corrupt int64
	off := 0
	for off+walFrameHeader <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + walFrameHeader + int(length)
		if length > walMaxRecordBytes || end > len(data) {
			corrupt++
			break
		}
		payload := data[off+walFrameHeader : end]
		if crc32.Checksum(payload, walCRC) != sum {
			corrupt++
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			corrupt++
			break
		}
		recs = append(recs, rec)
		off = end
	}
	if off != len(data) && corrupt == 0 {
		corrupt++ // trailing partial header
	}
	return recs, corrupt, nil
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", walSegmentPrefix, seq, walSegmentSuffix))
}

func (w *wal) openSegment(seq uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: opening WAL segment: %w", err)
	}
	w.f, w.seq, w.size = f, seq, 0
	w.st.segments.Add(1)
	return w.syncDir()
}

// syncDir fsyncs the WAL directory so segment creation and the
// checkpoint rename are themselves durable.
func (w *wal) syncDir() error {
	d, err := os.Open(w.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// append journals recs as one durable unit: every frame is written,
// then a single fsync covers the batch (a whole submission costs one
// disk flush, not one per job). It must not be called after close or
// kill.
func (w *wal) append(recs ...record) error {
	if w.closed {
		return errors.New("jobs: append to closed WAL")
	}
	var buf []byte
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			return fmt.Errorf("jobs: encoding WAL record: %w", err)
		}
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, walCRC))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("jobs: writing WAL: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: fsync WAL: %w", err)
	}
	ns := time.Since(start).Nanoseconds()
	w.st.fsyncs.Add(1)
	w.st.fsyncTotalNs.Add(ns)
	for {
		old := w.st.fsyncMaxNs.Load()
		if ns <= old || w.st.fsyncMaxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	w.st.appends.Add(int64(len(recs)))
	w.st.appendBytes.Add(int64(len(buf)))
	w.size += int64(len(buf))
	if w.size >= w.segMax {
		return w.rotate()
	}
	return nil
}

func (w *wal) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.openSegment(w.seq + 1)
}

// liveSegments is how many closed segments precede the open one — the
// compaction trigger.
func (w *wal) liveSegments() int64 { return w.st.segments.Load() }

// writeCheckpoint atomically replaces the log's history with a
// snapshot: recs must rebuild every retained job. After the rename
// lands, all segments up to and including the current one are deleted
// and a fresh segment is opened (unless closing, when the caller is
// about to close the WAL anyway).
func (w *wal) writeCheckpoint(recs []record, closing bool) error {
	if w.closed {
		return errors.New("jobs: checkpoint on closed WAL")
	}
	cp := checkpoint{Seq: w.seq, Records: recs}
	data, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("jobs: encoding checkpoint: %w", err)
	}
	tmp := filepath.Join(w.dir, walCheckpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: writing checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("jobs: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobs: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, walCheckpointName)); err != nil {
		return fmt.Errorf("jobs: installing checkpoint: %w", err)
	}
	if err := w.syncDir(); err != nil {
		return err
	}
	w.st.checkpoints.Add(1)
	// The snapshot now subsumes every segment through w.seq; drop them.
	if err := w.f.Close(); err != nil {
		return err
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.seq <= cp.Seq {
			_ = os.Remove(seg.path)
			w.st.segments.Add(-1)
		}
	}
	if closing {
		w.closed = true
		return nil
	}
	return w.openSegment(cp.Seq + 1)
}

// close ends the log cleanly (the caller checkpoints first on drain).
func (w *wal) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// kill simulates a crash for chaos harnesses: the file handle is
// dropped on the floor with no checkpoint and no final sync — exactly
// the state kill -9 leaves behind, because every acknowledged append
// was already fsync'd.
func (w *wal) kill() {
	if w.closed {
		return
	}
	w.closed = true
	_ = w.f.Close()
}

func (w *wal) stats() WALStats {
	s := WALStats{
		Segments:        w.st.segments.Load(),
		Appends:         w.st.appends.Load(),
		AppendedBytes:   w.st.appendBytes.Load(),
		Fsyncs:          w.st.fsyncs.Load(),
		FsyncMaxNs:      w.st.fsyncMaxNs.Load(),
		Checkpoints:     w.st.checkpoints.Load(),
		ReplayedRecords: w.st.replayed.Load(),
		CorruptRecords:  w.st.corrupt.Load(),
	}
	if s.Fsyncs > 0 {
		s.FsyncAvgNs = w.st.fsyncTotalNs.Load() / s.Fsyncs
	}
	return s
}
