package jobs

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/ipcp"
)

// State is a job's position in the lifecycle state machine:
//
//	queued → running → done
//	                 ↘ poisoned   (MaxAttempts transient failures, or a
//	                               non-retryable internal error)
//	queued|running   → expired    (TTL deadline passed)
//	queued|running   → canceled   (client DELETE)
//
// done, poisoned, expired, and canceled are terminal; a replayed job
// that was running at the crash restarts as queued (its attempt count
// survives, so the poison threshold cannot be dodged by crashing).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StatePoisoned State = "poisoned"
	StateExpired  State = "expired"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StatePoisoned, StateExpired, StateCanceled:
		return true
	}
	return false
}

// DefaultTenant is the tenant jobs land under when the submission
// names none.
const DefaultTenant = "default"

// ExecOutcome is what one execution attempt produced. A nonzero Code
// means the attempt reached a verdict a synchronous client would have
// been sent (200 success or 4xx user fault): the job is done and Body
// holds the exact bytes the synchronous endpoint would have written.
// Code 0 means the attempt failed; Class/Err attribute it and
// Retryable says whether another attempt (one step down the
// degradation chain) could succeed.
type ExecOutcome struct {
	Code      int
	Body      []byte
	Class     string
	Err       string
	Retryable bool
}

// Executor runs one job attempt. internal/serve supplies the
// implementation that decodes the spec, runs the analyzer with the
// attempt's degraded config, and renders the response bytes. It must
// honor ctx (the manager cancels it on job cancellation, TTL expiry,
// and crash simulation) and must be safe for concurrent use.
type Executor interface {
	Execute(ctx context.Context, spec json.RawMessage, attempt int) ExecOutcome
}

// Submission is one job of a batch: the raw request spec (journaled
// and re-decoded verbatim on replay), its idempotency fingerprint
// (ipcp.Fingerprint of the program + memo-relevant config), and the
// requested TTL (0 = server default).
type Submission struct {
	Spec        json.RawMessage
	Fingerprint string
	TTL         time.Duration
}

// Ack is the acknowledgment for one submitted job. Deduped means the
// fingerprint matched a retained job for the same tenant and no new
// job was created — the idempotency half of exactly-once-observable.
type Ack struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	Deduped     bool   `json:"deduped,omitempty"`
}

// JobView is a job's externally visible state (everything except the
// result body, which Result serves verbatim).
type JobView struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	Attempts    int    `json:"attempts,omitempty"`
	Class       string `json:"error_class,omitempty"`
	Error       string `json:"error,omitempty"`
	Code        int    `json:"result_code,omitempty"`
	SubmittedMs int64  `json:"submitted_ms"`
	DeadlineMs  int64  `json:"deadline_ms"`
	FinishedMs  int64  `json:"finished_ms,omitempty"`
}

// QuotaError rejects a whole batch that would push its tenant past
// MaxQueued. RetryAfter is the backoff hint (already floored ≥ 1s)
// the server relays as a Retry-After header on the 429.
type QuotaError struct {
	Tenant     string
	Queued     int
	Limit      int
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q queue quota exceeded (%d queued, limit %d)", e.Tenant, e.Queued, e.Limit)
}

// ErrDraining rejects submissions while the manager is draining or
// after it has been killed.
var ErrDraining = errors.New("jobs: manager is draining")

// Config configures a Manager. Zero values select the documented
// defaults.
type Config struct {
	// Dir is the WAL directory (required).
	Dir string
	// Executor runs job attempts (required).
	Executor Executor
	// Workers is the number of concurrent job executions (default 4).
	Workers int
	// Policy sets attempts/TTL/retention defaults (see ipcp.JobPolicy).
	Policy ipcp.JobPolicy
	// DefaultQuota applies to tenants absent from Tenants.
	DefaultQuota ipcp.TenantQuota
	// Tenants pins per-tenant quotas by name.
	Tenants map[string]ipcp.TenantQuota
	// SegmentBytes rotates WAL segments at this size (default 4 MiB).
	SegmentBytes int64
	// CompactSegments checkpoints once more than this many full
	// segments accumulate (default 4).
	CompactSegments int
	// RetryBase/RetryMaxDelay shape the retry backoff ladder
	// (defaults 100ms / 5s; delay = RetryBase << attempt, capped).
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// SweepInterval paces the TTL/retention/compaction sweeper
	// (default 200ms).
	SweepInterval time.Duration
}

type tenantState struct {
	name        string
	weight      int
	maxQueued   int
	maxInFlight int

	vfinish  float64
	queue    []*job
	inFlight int

	submitted, deduped     int64
	done, poisoned         int64
	expired, canceled      int64
	retries, quotaRejected int64
}

type job struct {
	id          string
	tenant      string
	fingerprint string
	spec        json.RawMessage

	state     State
	attempts  int
	vf        float64
	notBefore time.Time

	submitted time.Time
	deadline  time.Time
	finished  time.Time

	cancel          context.CancelFunc
	cancelRequested bool

	class  string
	errMsg string
	code   int
	body   []byte
}

func (j *job) view() JobView {
	v := JobView{
		ID:          j.id,
		Tenant:      j.tenant,
		Fingerprint: j.fingerprint,
		State:       j.state,
		Attempts:    j.attempts,
		SubmittedMs: j.submitted.UnixMilli(),
		DeadlineMs:  j.deadline.UnixMilli(),
	}
	if j.state.Terminal() {
		v.FinishedMs = j.finished.UnixMilli()
		v.Code = j.code
	}
	if j.state == StatePoisoned || (!j.state.Terminal() && j.attempts > 0) {
		v.Class, v.Error = j.class, j.errMsg
	}
	return v
}

// Manager is the durable job queue: WAL-backed state, WFQ dispatch,
// bounded retries, poison quarantine, TTL expiry, and retention
// pruning. All state transitions happen under mu and are journaled
// before they become observable; only attempt execution runs outside
// the lock.
type Manager struct {
	cfg   Config
	now   func() time.Time
	sweep time.Duration

	runCtx    context.Context
	cancelRun context.CancelFunc
	stopCh    chan struct{}
	wg        sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	killed   bool
	draining bool
	wal      *wal
	tag      string
	seq      uint64
	vnow     float64
	jobs     map[string]*job
	order    []*job
	dedupe   map[string]string // tenant\x00fingerprint → job id
	tenants  map[string]*tenantState
	subs     map[int]chan struct{}
	subSeq   int

	walAppendErrors int64
}

// New opens (creating if needed) the WAL in cfg.Dir, replays it, and
// starts the worker pool. Jobs that were queued or running at the
// last shutdown or crash are re-enqueued and re-executed.
func New(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if cfg.Executor == nil {
		return nil, errors.New("jobs: Config.Executor is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Policy.MaxAttempts <= 0 {
		cfg.Policy.MaxAttempts = 3
	}
	if cfg.Policy.DefaultTTL <= 0 {
		cfg.Policy.DefaultTTL = 10 * time.Minute
	}
	if cfg.Policy.MaxTTL <= 0 {
		cfg.Policy.MaxTTL = time.Hour
	}
	if cfg.Policy.Retention <= 0 {
		cfg.Policy.Retention = 30 * time.Minute
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = 5 * time.Second
	}
	sweep := cfg.SweepInterval
	if sweep <= 0 {
		sweep = 200 * time.Millisecond
	}

	w, recs, err := openWAL(cfg.Dir, cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		now:       time.Now,
		sweep:     sweep,
		runCtx:    runCtx,
		cancelRun: cancelRun,
		stopCh:    make(chan struct{}),
		wal:       w,
		tag:       instanceTag(),
		jobs:      make(map[string]*job),
		dedupe:    make(map[string]string),
		tenants:   make(map[string]*tenantState),
		subs:      make(map[int]chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.replay(recs); err != nil {
		w.kill()
		cancelRun()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.sweeper()
	return m, nil
}

func (m *Manager) tenantLocked(name string) *tenantState {
	if t, ok := m.tenants[name]; ok {
		return t
	}
	q := m.cfg.DefaultQuota
	if pinned, ok := m.cfg.Tenants[name]; ok {
		q = pinned
	}
	t := &tenantState{name: name, weight: q.Weight, maxQueued: q.MaxQueued, maxInFlight: q.MaxInFlight}
	if t.weight <= 0 {
		t.weight = 1
	}
	if t.maxQueued <= 0 {
		t.maxQueued = 1024
	}
	if t.maxInFlight <= 0 {
		t.maxInFlight = m.cfg.Workers
	}
	m.tenants[name] = t
	return t
}

func dedupeKey(tenant, fp string) string { return tenant + "\x00" + fp }

// replay rebuilds in-memory state from the journaled records: submits
// create jobs, fail records restore attempt counts, terminal records
// settle. Every surviving non-terminal job is re-enqueued in
// submission order.
func (m *Manager) replay(recs []record) error {
	for i := range recs {
		rec := &recs[i]
		switch rec.T {
		case recSubmit:
			if rec.ID == "" || m.jobs[rec.ID] != nil {
				continue
			}
			j := &job{
				id:          rec.ID,
				tenant:      rec.Tenant,
				fingerprint: rec.Fingerprint,
				spec:        rec.Spec,
				state:       StateQueued,
				submitted:   time.UnixMilli(rec.SubmittedMs),
				deadline:    time.UnixMilli(rec.DeadlineMs),
			}
			if j.tenant == "" {
				j.tenant = DefaultTenant
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j)
			if seq, err := parseJobID(rec.ID); err == nil && seq >= m.seq {
				m.seq = seq + 1
			}
		case recFail:
			if j := m.jobs[rec.ID]; j != nil && !j.state.Terminal() {
				j.attempts = rec.Attempt
				j.class, j.errMsg = rec.Class, rec.Error
			}
		case recDone:
			if j := m.jobs[rec.ID]; j != nil {
				j.state = StateDone
				j.code, j.body = rec.Code, rec.Body
				j.finished = time.UnixMilli(rec.FinishedMs)
			}
		case recPoison:
			if j := m.jobs[rec.ID]; j != nil {
				j.state = StatePoisoned
				j.class, j.errMsg = rec.Class, rec.Error
				j.finished = time.UnixMilli(rec.FinishedMs)
			}
		case recExpire:
			if j := m.jobs[rec.ID]; j != nil {
				j.state = StateExpired
				j.finished = time.UnixMilli(rec.FinishedMs)
			}
		case recCancel:
			if j := m.jobs[rec.ID]; j != nil {
				j.state = StateCanceled
				j.finished = time.UnixMilli(rec.FinishedMs)
			}
		}
	}
	// Settle jobs the crash caught between a fail record and its
	// verdict, then re-enqueue the remainder in submission order.
	now := m.now()
	var lateRecs []record
	for _, j := range m.order {
		if j.state.Terminal() {
			m.countTerminal(j)
			continue
		}
		switch {
		case !j.deadline.IsZero() && now.After(j.deadline):
			j.state, j.finished = StateExpired, now
			lateRecs = append(lateRecs, record{T: recExpire, ID: j.id, FinishedMs: now.UnixMilli()})
			m.countTerminal(j)
		case j.attempts >= m.cfg.Policy.MaxAttempts:
			j.state, j.finished = StatePoisoned, now
			lateRecs = append(lateRecs, record{T: recPoison, ID: j.id, Class: j.class, Error: j.errMsg, FinishedMs: now.UnixMilli()})
			m.countTerminal(j)
		default:
			j.state = StateQueued
			m.enqueueLocked(j)
		}
	}
	for _, j := range m.order {
		switch j.state {
		case StateQueued, StateRunning, StateDone:
			m.dedupe[dedupeKey(j.tenant, j.fingerprint)] = j.id
		}
	}
	if len(lateRecs) > 0 {
		if err := m.wal.append(lateRecs...); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) countTerminal(j *job) {
	t := m.tenantLocked(j.tenant)
	switch j.state {
	case StateDone:
		t.done++
	case StatePoisoned:
		t.poisoned++
	case StateExpired:
		t.expired++
	case StateCanceled:
		t.canceled++
	}
}

// parseJobID extracts the sequence component — everything after the
// last dash — so replay can advance m.seq past every journaled ID,
// whichever boot (tag) minted it.
func parseJobID(id string) (uint64, error) {
	const prefix = "j-"
	if !strings.HasPrefix(id, prefix) {
		return 0, errors.New("bad job id")
	}
	seq := id[len(prefix):]
	if i := strings.LastIndexByte(seq, '-'); i >= 0 {
		seq = seq[i+1:]
	}
	return strconv.ParseUint(seq, 16, 64)
}

// instanceTag is a random per-boot component folded into every new job
// ID. Sequence numbers alone are only unique within one WAL, and a
// coordinator fronting several backends (or one backend whose WAL
// directory was wiped) must never see two live jobs share an ID.
func instanceTag() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: uniqueness degrades to per-process, never fails open.
		return fmt.Sprintf("%08x", os.Getpid())
	}
	return fmt.Sprintf("%08x", b)
}

func (m *Manager) nextIDLocked() string {
	id := fmt.Sprintf("j-%s-%016x", m.tag, m.seq)
	m.seq++
	return id
}

// enqueueLocked stamps the job's WFQ virtual finish time and appends
// it to its tenant's queue.
func (m *Manager) enqueueLocked(j *job) {
	t := m.tenantLocked(j.tenant)
	vf := t.vfinish
	if m.vnow > vf {
		vf = m.vnow
	}
	vf += 1 / float64(t.weight)
	t.vfinish, j.vf = vf, vf
	t.queue = append(t.queue, j)
}

// requeueFrontLocked puts a retrying (or drain-interrupted) job back
// at the head of its tenant's queue with its original virtual finish
// time, so a retry does not lose its place to later submissions.
func (m *Manager) requeueFrontLocked(j *job) {
	t := m.tenantLocked(j.tenant)
	t.queue = append([]*job{j}, t.queue...)
}

func removeQueued(t *tenantState, j *job) bool {
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return true
		}
	}
	return false
}

// pickLocked is the WFQ dispatch decision: among tenants with a
// dispatchable head (queue non-empty, head past its retry backoff,
// tenant under its in-flight cap), pick the head with the smallest
// virtual finish time. Returns nil when nothing is dispatchable.
func (m *Manager) pickLocked(now time.Time) *job {
	var best *tenantState
	for _, t := range m.tenants {
		if len(t.queue) == 0 || t.inFlight >= t.maxInFlight {
			continue
		}
		h := t.queue[0]
		if h.notBefore.After(now) {
			continue
		}
		if best == nil || h.vf < best.queue[0].vf {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	j := best.queue[0]
	best.queue = best.queue[1:]
	if j.vf > m.vnow {
		m.vnow = j.vf
	}
	return j
}

func (m *Manager) backoff(attempt int) time.Duration {
	d := m.cfg.RetryBase
	for i := 1; i < attempt && d < m.cfg.RetryMaxDelay; i++ {
		d *= 2
	}
	if d > m.cfg.RetryMaxDelay {
		d = m.cfg.RetryMaxDelay
	}
	return d
}

// Submit accepts a batch for one tenant, all-or-nothing: either every
// job is journaled (one batched fsync) and acknowledged, or the batch
// is rejected whole — a *QuotaError past the tenant's queue quota,
// ErrDraining during drain. Submissions whose fingerprint matches a
// retained queued/running/done job (including an earlier entry of the
// same batch) dedupe to the existing job instead of creating one.
func (m *Manager) Submit(tenant string, subs []Submission) ([]Ack, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if len(subs) == 0 {
		return nil, errors.New("jobs: empty batch")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed || m.draining {
		return nil, ErrDraining
	}
	t := m.tenantLocked(tenant)

	now := m.now()
	acks := make([]Ack, len(subs))
	var newJobs []*job
	var recs []record
	batch := make(map[string]int) // dedupe key → ack index within this batch
	for i, sub := range subs {
		key := dedupeKey(tenant, sub.Fingerprint)
		if id, ok := m.dedupe[key]; ok {
			j := m.jobs[id]
			acks[i] = Ack{ID: j.id, Fingerprint: j.fingerprint, State: j.state, Deduped: true}
			t.deduped++
			continue
		}
		if prev, ok := batch[key]; ok {
			acks[i] = acks[prev]
			acks[i].Deduped = true
			t.deduped++
			continue
		}
		ttl := sub.TTL
		if ttl <= 0 {
			ttl = m.cfg.Policy.DefaultTTL
		}
		if ttl > m.cfg.Policy.MaxTTL {
			ttl = m.cfg.Policy.MaxTTL
		}
		j := &job{
			id:          m.nextIDLocked(),
			tenant:      tenant,
			fingerprint: sub.Fingerprint,
			spec:        sub.Spec,
			state:       StateQueued,
			submitted:   now,
			deadline:    now.Add(ttl),
		}
		newJobs = append(newJobs, j)
		recs = append(recs, record{
			T: recSubmit, ID: j.id, Tenant: tenant, Fingerprint: j.fingerprint,
			Spec: j.spec, SubmittedMs: j.submitted.UnixMilli(), DeadlineMs: j.deadline.UnixMilli(),
		})
		acks[i] = Ack{ID: j.id, Fingerprint: j.fingerprint, State: StateQueued}
		batch[key] = i
	}
	if len(t.queue)+len(newJobs) > t.maxQueued {
		t.quotaRejected++
		// Roll back the speculative ID counter so rejected batches do
		// not burn the sequence space.
		m.seq -= uint64(len(newJobs))
		return nil, &QuotaError{
			Tenant: tenant, Queued: len(t.queue), Limit: t.maxQueued,
			RetryAfter: m.quotaRetryAfterLocked(t),
		}
	}
	if len(recs) > 0 {
		// Durability before acknowledgment: the batch is fsync'd to
		// the WAL before any job exists in memory, so a crash after
		// this point cannot lose an acknowledged job, and a crash
		// before it cannot leak a half-accepted batch.
		if err := m.wal.append(recs...); err != nil {
			m.seq -= uint64(len(newJobs))
			return nil, err
		}
	}
	for _, j := range newJobs {
		m.jobs[j.id] = j
		m.order = append(m.order, j)
		m.dedupe[dedupeKey(j.tenant, j.fingerprint)] = j.id
		m.enqueueLocked(j)
		t.submitted++
	}
	if len(newJobs) > 0 {
		m.cond.Broadcast()
		m.notifyLocked()
	}
	return acks, nil
}

// quotaRetryAfterLocked estimates how long until the tenant's queue
// has drained enough to admit more work: roughly one second per
// worker-load unit, floored at 1s and capped at 30s.
func (m *Manager) quotaRetryAfterLocked(t *tenantState) time.Duration {
	d := time.Duration(1+len(t.queue)/m.cfg.Workers) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Get returns a job's view.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Result returns the stored result bytes and HTTP-shaped code for a
// done job, exactly as journaled — the byte-identical replay path.
func (m *Manager) Result(id string) (JobView, []byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, nil, false
	}
	return j.view(), j.body, true
}

// List returns views of every retained job, newest-submitted last;
// tenant filters when non-empty.
func (m *Manager) List(tenant string) []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, 0, len(m.order))
	for _, j := range m.order {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		views = append(views, j.view())
	}
	sort.SliceStable(views, func(i, k int) bool {
		if views[i].SubmittedMs != views[k].SubmittedMs {
			return views[i].SubmittedMs < views[k].SubmittedMs
		}
		return views[i].ID < views[k].ID
	})
	return views
}

// Cancel moves a queued or running job to canceled (running attempts
// have their context canceled). Terminal jobs are returned unchanged.
func (m *Manager) Cancel(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	switch j.state {
	case StateQueued:
		removeQueued(m.tenantLocked(j.tenant), j)
		m.settleTerminalLocked(j, StateCanceled, record{T: recCancel, ID: j.id})
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		// The worker observes the canceled context and journals the
		// cancel record when the attempt unwinds.
	}
	return j.view(), true
}

// Subscribe returns a channel that receives a (coalesced) signal on
// every job state change, and a function to unsubscribe.
func (m *Manager) Subscribe() (<-chan struct{}, func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan struct{}, 1)
	id := m.subSeq
	m.subSeq++
	m.subs[id] = ch
	return ch, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.subs, id)
	}
}

func (m *Manager) notifyLocked() {
	for _, ch := range m.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// settleTerminalLocked journals a terminal record, applies it in
// memory, and wakes watchers. Append failures (disk full, torn
// device) are counted but do not block the in-memory verdict: the
// client still gets an answer, durability is degraded, and the
// counter makes the degradation visible.
func (m *Manager) settleTerminalLocked(j *job, s State, recs ...record) {
	now := m.now()
	for i := range recs {
		recs[i].FinishedMs = now.UnixMilli()
	}
	if err := m.wal.append(recs...); err != nil {
		m.walAppendErrors++
	}
	j.state, j.finished = s, now
	if s != StateDone {
		delete(m.dedupe, dedupeKey(j.tenant, j.fingerprint))
	}
	m.countTerminal(j)
	m.notifyLocked()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *job
		for {
			if m.killed || m.draining {
				m.mu.Unlock()
				return
			}
			if j = m.pickLocked(m.now()); j != nil {
				break
			}
			m.cond.Wait()
		}
		now := m.now()
		if !j.deadline.IsZero() && now.After(j.deadline) {
			m.settleTerminalLocked(j, StateExpired, record{T: recExpire, ID: j.id})
			m.mu.Unlock()
			continue
		}
		t := m.tenantLocked(j.tenant)
		t.inFlight++
		j.state = StateRunning
		ctx, cancel := context.WithDeadline(m.runCtx, j.deadline)
		j.cancel = cancel
		m.notifyLocked()
		m.mu.Unlock()

		out := m.cfg.Executor.Execute(ctx, j.spec, j.attempts)
		ctxErr := ctx.Err()
		cancel()

		m.mu.Lock()
		t.inFlight--
		j.cancel = nil
		m.settleAttemptLocked(j, t, ctxErr, out)
		m.cond.Broadcast() // an in-flight slot freed; retries may now be schedulable
		m.mu.Unlock()
	}
}

// settleAttemptLocked applies one finished attempt: terminal verdict,
// cancellation, drain requeue, expiry, or the retry/poison ladder.
func (m *Manager) settleAttemptLocked(j *job, t *tenantState, ctxErr error, out ExecOutcome) {
	now := m.now()
	switch {
	case m.killed:
		// Crash simulation: the verdict is deliberately dropped, as a
		// real crash would have dropped it. Replay re-executes.
	case j.cancelRequested:
		m.settleTerminalLocked(j, StateCanceled, record{T: recCancel, ID: j.id})
	case out.Code != 0:
		m.settleTerminalLocked(j, StateDone, record{T: recDone, ID: j.id, Code: out.Code, Body: out.Body})
		j.code, j.body = out.Code, out.Body
	case errors.Is(ctxErr, context.Canceled) && m.draining:
		// Graceful drain interrupted the attempt past its budget; the
		// job goes back to the queue and the closing checkpoint
		// persists it for the next boot.
		j.state = StateQueued
		m.requeueFrontLocked(j)
		m.notifyLocked()
	case !j.deadline.IsZero() && (errors.Is(ctxErr, context.DeadlineExceeded) || now.After(j.deadline)):
		m.settleTerminalLocked(j, StateExpired, record{T: recExpire, ID: j.id})
	default:
		j.attempts++
		j.class, j.errMsg = out.Class, out.Err
		fail := record{T: recFail, ID: j.id, Attempt: j.attempts, Class: out.Class, Error: out.Err}
		if !out.Retryable || j.attempts >= m.cfg.Policy.MaxAttempts {
			// The fail and poison records ride one append (one fsync,
			// one torn-tail unit), so replay can never see the final
			// failure without its quarantine verdict.
			m.settleTerminalLocked(j, StatePoisoned,
				fail, record{T: recPoison, ID: j.id, Class: out.Class, Error: out.Err})
			return
		}
		if err := m.wal.append(fail); err != nil {
			m.walAppendErrors++
		}
		t.retries++
		delay := m.backoff(j.attempts)
		j.state = StateQueued
		j.notBefore = now.Add(delay)
		m.requeueFrontLocked(j)
		m.notifyLocked()
		time.AfterFunc(delay+time.Millisecond, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
	}
}

// sweeper periodically expires queued jobs past their deadline,
// prunes terminal jobs past retention, and compacts the WAL once
// enough segments accumulate.
func (m *Manager) sweeper() {
	defer m.wg.Done()
	tick := time.NewTicker(m.sweep)
	defer tick.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-tick.C:
		}
		m.mu.Lock()
		if m.killed || m.draining {
			m.mu.Unlock()
			return
		}
		now := m.now()
		for _, t := range m.tenants {
			for _, j := range append([]*job(nil), t.queue...) {
				if !j.deadline.IsZero() && now.After(j.deadline) {
					removeQueued(t, j)
					m.settleTerminalLocked(j, StateExpired, record{T: recExpire, ID: j.id})
				}
			}
		}
		m.pruneLocked(now)
		if m.wal.liveSegments() > int64(m.cfg.CompactSegments) {
			if err := m.checkpointLocked(false); err != nil {
				m.walAppendErrors++
			}
		}
		// Fallback wakeup in case a retry timer fired while no worker
		// was waiting.
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// pruneLocked drops terminal jobs whose retention window has passed.
// Pruning is an in-memory act: the next checkpoint simply omits them,
// and an unluckily-timed crash just replays a terminal job that the
// first sweep prunes again.
func (m *Manager) pruneLocked(now time.Time) {
	cutoff := now.Add(-m.cfg.Policy.Retention)
	kept := m.order[:0]
	for _, j := range m.order {
		if j.state.Terminal() && j.finished.Before(cutoff) {
			delete(m.jobs, j.id)
			if m.dedupe[dedupeKey(j.tenant, j.fingerprint)] == j.id {
				delete(m.dedupe, dedupeKey(j.tenant, j.fingerprint))
			}
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// checkpointLocked snapshots every retained job into the WAL
// checkpoint. Running jobs snapshot as queued (their submit + fail
// history), so a crash right after a compaction re-executes them.
func (m *Manager) checkpointLocked(closing bool) error {
	recs := make([]record, 0, 2*len(m.order))
	for _, j := range m.order {
		recs = append(recs, record{
			T: recSubmit, ID: j.id, Tenant: j.tenant, Fingerprint: j.fingerprint,
			Spec: j.spec, SubmittedMs: j.submitted.UnixMilli(), DeadlineMs: j.deadline.UnixMilli(),
		})
		if j.attempts > 0 && !j.state.Terminal() {
			recs = append(recs, record{T: recFail, ID: j.id, Attempt: j.attempts, Class: j.class, Error: j.errMsg})
		}
		switch j.state {
		case StateDone:
			recs = append(recs, record{T: recDone, ID: j.id, Code: j.code, Body: j.body, FinishedMs: j.finished.UnixMilli()})
		case StatePoisoned:
			recs = append(recs, record{T: recPoison, ID: j.id, Class: j.class, Error: j.errMsg, FinishedMs: j.finished.UnixMilli()})
		case StateExpired:
			recs = append(recs, record{T: recExpire, ID: j.id, FinishedMs: j.finished.UnixMilli()})
		case StateCanceled:
			recs = append(recs, record{T: recCancel, ID: j.id, FinishedMs: j.finished.UnixMilli()})
		}
	}
	return m.wal.writeCheckpoint(recs, closing)
}

// Drain stops dispatching, waits for in-flight attempts to finish (or
// cancels them when ctx expires — they requeue), then writes the
// closing checkpoint so every queued job survives to the next boot.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return nil
	}
	if !m.draining {
		m.draining = true
		close(m.stopCh)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.cancelRun()
		<-done
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return nil
	}
	err := m.checkpointLocked(true)
	m.killed = true // no further appends
	m.cancelRun()
	return err
}

// Kill simulates a crash for chaos harnesses: running attempts are
// canceled, their verdicts dropped, and the WAL is abandoned without
// a checkpoint — on-disk state is exactly what kill -9 would leave.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return
	}
	m.killed = true
	if !m.draining {
		m.draining = true
		close(m.stopCh)
	}
	m.wal.kill()
	m.cancelRun()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// TenantStats is one tenant's /statsz row.
type TenantStats struct {
	Weight          int   `json:"weight"`
	Queued          int   `json:"queued"`
	InFlight        int   `json:"in_flight"`
	Submitted       int64 `json:"submitted"`
	Deduped         int64 `json:"deduped"`
	Done            int64 `json:"done"`
	Poisoned        int64 `json:"poisoned"`
	Expired         int64 `json:"expired"`
	Canceled        int64 `json:"canceled"`
	Retries         int64 `json:"retries"`
	QuotaRejections int64 `json:"quota_rejections"`
}

// Stats is the job subsystem's /statsz block.
type Stats struct {
	Queued          int                    `json:"queued"`
	InFlight        int                    `json:"in_flight"`
	Retained        int                    `json:"retained"`
	Submitted       int64                  `json:"submitted"`
	Deduped         int64                  `json:"deduped"`
	Done            int64                  `json:"done"`
	Poisoned        int64                  `json:"poisoned"`
	Expired         int64                  `json:"expired"`
	Canceled        int64                  `json:"canceled"`
	Retries         int64                  `json:"retries"`
	QuotaRejections int64                  `json:"quota_rejections"`
	WALAppendErrors int64                  `json:"wal_append_errors,omitempty"`
	Tenants         map[string]TenantStats `json:"tenants,omitempty"`
	WAL             WALStats               `json:"wal"`
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Retained: len(m.order), Tenants: make(map[string]TenantStats, len(m.tenants)), WAL: m.wal.stats(), WALAppendErrors: m.walAppendErrors}
	for name, t := range m.tenants {
		ts := TenantStats{
			Weight: t.weight, Queued: len(t.queue), InFlight: t.inFlight,
			Submitted: t.submitted, Deduped: t.deduped,
			Done: t.done, Poisoned: t.poisoned, Expired: t.expired, Canceled: t.canceled,
			Retries: t.retries, QuotaRejections: t.quotaRejected,
		}
		s.Tenants[name] = ts
		s.Queued += ts.Queued
		s.InFlight += ts.InFlight
		s.Submitted += ts.Submitted
		s.Deduped += ts.Deduped
		s.Done += ts.Done
		s.Poisoned += ts.Poisoned
		s.Expired += ts.Expired
		s.Canceled += ts.Canceled
		s.Retries += ts.Retries
		s.QuotaRejections += ts.QuotaRejections
	}
	return s
}
