package jobs

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/ipcp"
)

// stubExec is a scriptable Executor: per-fingerprint behavior keyed
// by the spec's "p" field.
type stubExec struct {
	mu      sync.Mutex
	calls   map[string]int
	failN   map[string]int  // fail this many attempts before succeeding
	poison  map[string]bool // fail every attempt, retryable
	hard    map[string]bool // fail first attempt, non-retryable
	block   chan struct{}   // if non-nil, attempts park here until closed
	started atomic.Int64
}

type stubSpec struct {
	P string `json:"p"`
}

func newStubExec() *stubExec {
	return &stubExec{
		calls:  make(map[string]int),
		failN:  make(map[string]int),
		poison: make(map[string]bool),
		hard:   make(map[string]bool),
	}
}

func (e *stubExec) Execute(ctx context.Context, spec json.RawMessage, attempt int) ExecOutcome {
	var s stubSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return ExecOutcome{Class: "decode", Err: err.Error(), Retryable: false}
	}
	e.mu.Lock()
	e.calls[s.P]++
	block := e.block
	poison := e.poison[s.P]
	hard := e.hard[s.P]
	failN := e.failN[s.P]
	e.mu.Unlock()
	e.started.Add(1)
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return ExecOutcome{Class: "exhausted:deadline", Err: ctx.Err().Error(), Retryable: true}
		}
	}
	if ctx.Err() != nil {
		return ExecOutcome{Class: "exhausted:deadline", Err: ctx.Err().Error(), Retryable: true}
	}
	switch {
	case poison:
		return ExecOutcome{Class: "panic:solve", Err: "injected poison", Retryable: true}
	case hard:
		return ExecOutcome{Class: "internal", Err: "injected hard failure", Retryable: false}
	case attempt < failN:
		return ExecOutcome{Class: "panic:solve", Err: "injected transient", Retryable: true}
	}
	body := fmt.Sprintf("{\n  \"result\": %q,\n  \"attempt\": %d\n}\n", s.P, attempt)
	return ExecOutcome{Code: 200, Body: []byte(body)}
}

func (e *stubExec) callCount(p string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls[p]
}

func sub(p string, ttl time.Duration) Submission {
	return Submission{
		Spec:        json.RawMessage(fmt.Sprintf(`{"p":%q}`, p)),
		Fingerprint: "fp-" + p,
		TTL:         ttl,
	}
}

func newTestManager(t *testing.T, dir string, exec Executor, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:           dir,
		Executor:      exec,
		Workers:       2,
		RetryBase:     5 * time.Millisecond,
		RetryMaxDelay: 20 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func waitTerminal(t *testing.T, m *Manager, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s never reached a terminal state (stuck at %s)", id, v.State)
	return JobView{}
}

func TestSubmitExecuteDone(t *testing.T) {
	exec := newStubExec()
	m := newTestManager(t, t.TempDir(), exec, nil)
	defer m.Kill()

	acks, err := m.Submit("", []Submission{sub("a", 0), sub("b", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(acks) != 2 || acks[0].ID == acks[1].ID {
		t.Fatalf("bad acks: %+v", acks)
	}
	for _, a := range acks {
		if a.Deduped || a.State != StateQueued {
			t.Fatalf("fresh ack should be queued, not deduped: %+v", a)
		}
	}
	v := waitTerminal(t, m, acks[0].ID)
	if v.State != StateDone || v.Code != 200 {
		t.Fatalf("want done/200, got %+v", v)
	}
	if v.Tenant != DefaultTenant {
		t.Fatalf("empty tenant should map to %q, got %q", DefaultTenant, v.Tenant)
	}
	_, body, ok := m.Result(acks[0].ID)
	if !ok || string(body) == "" {
		t.Fatalf("missing result body")
	}
	want := "{\n  \"result\": \"a\",\n  \"attempt\": 0\n}\n"
	if string(body) != want {
		t.Fatalf("result bytes: got %q want %q", body, want)
	}
}

func TestDedupeByFingerprint(t *testing.T) {
	exec := newStubExec()
	m := newTestManager(t, t.TempDir(), exec, nil)
	defer m.Kill()

	// Duplicate within one batch.
	acks, err := m.Submit("t1", []Submission{sub("a", 0), sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks[1].ID != acks[0].ID || !acks[1].Deduped {
		t.Fatalf("in-batch duplicate should dedupe: %+v", acks)
	}
	waitTerminal(t, m, acks[0].ID)

	// Duplicate across batches, post-completion: returns the done job.
	acks2, err := m.Submit("t1", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks2[0].ID != acks[0].ID || !acks2[0].Deduped || acks2[0].State != StateDone {
		t.Fatalf("cross-batch duplicate should dedupe to done job: %+v", acks2)
	}
	// Different tenant, same fingerprint: independent job.
	acks3, err := m.Submit("t2", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks3[0].ID == acks[0].ID || acks3[0].Deduped {
		t.Fatalf("tenants must not share dedupe space: %+v", acks3)
	}
	waitTerminal(t, m, acks3[0].ID)
	if got := exec.callCount("a"); got != 2 {
		t.Fatalf("program a should execute twice (once per tenant), got %d", got)
	}
}

func TestRetryThenSucceed(t *testing.T) {
	exec := newStubExec()
	exec.failN["flaky"] = 2
	m := newTestManager(t, t.TempDir(), exec, nil)
	defer m.Kill()

	acks, err := m.Submit("", []Submission{sub("flaky", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitTerminal(t, m, acks[0].ID)
	if v.State != StateDone {
		t.Fatalf("want done after retries, got %+v", v)
	}
	if v.Attempts != 2 {
		t.Fatalf("want 2 recorded failures, got %d", v.Attempts)
	}
	if got := exec.callCount("flaky"); got != 3 {
		t.Fatalf("want 3 attempts, got %d", got)
	}
	st := m.Stats()
	if st.Retries != 2 {
		t.Fatalf("stats retries: want 2, got %d", st.Retries)
	}
}

func TestPoisonQuarantine(t *testing.T) {
	exec := newStubExec()
	exec.poison["bad"] = true
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Policy = ipcp.JobPolicy{MaxAttempts: 3}
	})
	defer m.Kill()

	acks, err := m.Submit("", []Submission{sub("bad", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitTerminal(t, m, acks[0].ID)
	if v.State != StatePoisoned {
		t.Fatalf("want poisoned, got %+v", v)
	}
	if v.Class != "panic:solve" || v.Error == "" {
		t.Fatalf("poison must carry the attributed error: %+v", v)
	}
	if got := exec.callCount("bad"); got != 3 {
		t.Fatalf("MaxAttempts=3 should mean exactly 3 attempts, got %d", got)
	}
	if st := m.Stats(); st.Poisoned != 1 {
		t.Fatalf("stats poisoned: want 1, got %d", st.Poisoned)
	}
	// A poisoned job does not dedupe: resubmission creates a new job.
	acks2, err := m.Submit("", []Submission{sub("bad", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks2[0].ID == acks[0].ID || acks2[0].Deduped {
		t.Fatalf("poisoned job must not satisfy dedupe: %+v", acks2)
	}
	waitTerminal(t, m, acks2[0].ID)
}

func TestNonRetryablePoisonsImmediately(t *testing.T) {
	exec := newStubExec()
	exec.hard["hard"] = true
	m := newTestManager(t, t.TempDir(), exec, nil)
	defer m.Kill()

	acks, err := m.Submit("", []Submission{sub("hard", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitTerminal(t, m, acks[0].ID)
	if v.State != StatePoisoned || v.Attempts != 1 {
		t.Fatalf("non-retryable failure should poison on attempt 1: %+v", v)
	}
	if got := exec.callCount("hard"); got != 1 {
		t.Fatalf("want 1 attempt, got %d", got)
	}
}

func TestQueueQuota(t *testing.T) {
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Workers = 1
		c.DefaultQuota = ipcp.TenantQuota{MaxQueued: 2}
	})
	defer close(exec.block)
	defer m.Kill()

	// One job occupies the worker; two more fill the queue.
	if _, err := m.Submit("t", []Submission{sub("r", 0)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })
	if _, err := m.Submit("t", []Submission{sub("q1", 0), sub("q2", 0)}); err != nil {
		t.Fatalf("Submit within quota: %v", err)
	}
	_, err := m.Submit("t", []Submission{sub("q3", 0)})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("QuotaError.RetryAfter must be >= 1s, got %v", qe.RetryAfter)
	}
	if st := m.Stats(); st.QuotaRejections != 1 {
		t.Fatalf("stats quota_rejections: want 1, got %d", st.QuotaRejections)
	}
	// The rejection is all-or-nothing: q3 must not exist.
	for _, v := range m.List("t") {
		if v.Fingerprint == "fp-q3" {
			t.Fatalf("rejected batch leaked a job: %+v", v)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Workers = 1
	})
	defer close(exec.block)
	defer m.Kill()

	// Occupy the only worker so the short-TTL job expires while queued.
	if _, err := m.Submit("t", []Submission{sub("blocker", 0)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })
	acks, err := m.Submit("t", []Submission{sub("short", 30*time.Millisecond)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitTerminal(t, m, acks[0].ID)
	if v.State != StateExpired {
		t.Fatalf("want expired, got %+v", v)
	}
	if exec.callCount("short") != 0 {
		t.Fatalf("expired-in-queue job must not execute")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Workers = 1
	})
	defer m.Kill()

	acks, err := m.Submit("t", []Submission{sub("run", 0), sub("wait", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })

	// Cancel the queued job: immediate.
	v, ok := m.Cancel(acks[1].ID)
	if !ok || v.State != StateCanceled {
		t.Fatalf("cancel queued: %+v ok=%v", v, ok)
	}
	// Cancel the running job: its context unwinds the attempt.
	if _, ok := m.Cancel(acks[0].ID); !ok {
		t.Fatalf("cancel running: not found")
	}
	v = waitTerminal(t, m, acks[0].ID)
	if v.State != StateCanceled {
		t.Fatalf("want canceled, got %+v", v)
	}
	close(exec.block)
	// Canceling a terminal job is a no-op.
	v2, ok := m.Cancel(acks[0].ID)
	if !ok || v2.State != StateCanceled {
		t.Fatalf("cancel terminal: %+v", v2)
	}
}

func TestKillReplayExactlyOnceObservable(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, dir, exec, func(c *Config) {
		c.Workers = 2
	})

	var ids []string
	for i := 0; i < 8; i++ {
		acks, err := m.Submit("t", []Submission{sub(fmt.Sprintf("p%d", i), 0)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, acks[0].ID)
	}
	waitCond(t, func() bool { return exec.started.Load() >= 2 })
	// Crash mid-batch: two attempts in flight, six queued, nothing done.
	m.Kill()
	close(exec.block)

	exec2 := newStubExec()
	m2 := newTestManager(t, dir, exec2, func(c *Config) { c.Workers = 2 })
	defer m2.Kill()
	for i, id := range ids {
		v := waitTerminal(t, m2, id)
		if v.State != StateDone {
			t.Fatalf("replayed job %s: want done, got %+v", id, v)
		}
		_, body, _ := m2.Result(id)
		want := fmt.Sprintf("{\n  \"result\": \"p%d\",\n  \"attempt\": 0\n}\n", i)
		if string(body) != want {
			t.Fatalf("job %s result mismatch after replay: got %q want %q", id, body, want)
		}
	}
	// Resubmitting after replay dedupes to the recovered jobs.
	acks, err := m2.Submit("t", []Submission{sub("p0", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks[0].ID != ids[0] || !acks[0].Deduped {
		t.Fatalf("replayed job must satisfy dedupe: %+v", acks)
	}
	if st := m2.Stats(); st.WAL.ReplayedRecords == 0 {
		t.Fatalf("expected replayed records in stats")
	}
}

func TestKillPreservesDoneResults(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	m := newTestManager(t, dir, exec, nil)
	acks, err := m.Submit("t", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, m, acks[0].ID)
	_, body1, _ := m.Result(acks[0].ID)
	m.Kill()

	exec2 := newStubExec()
	m2 := newTestManager(t, dir, exec2, nil)
	defer m2.Kill()
	v, body2, ok := m2.Result(acks[0].ID)
	if !ok || v.State != StateDone {
		t.Fatalf("done job lost across crash: %+v ok=%v", v, ok)
	}
	if string(body1) != string(body2) {
		t.Fatalf("result bytes changed across crash:\n  before %q\n  after  %q", body1, body2)
	}
	if exec2.callCount("a") != 0 {
		t.Fatalf("done job must not re-execute after replay")
	}
}

func TestAttemptCountSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	exec.poison["bad"] = true
	exec.block = make(chan struct{})
	m := newTestManager(t, dir, exec, func(c *Config) {
		c.Workers = 1
		c.Policy = ipcp.JobPolicy{MaxAttempts: 3}
		c.RetryBase = time.Hour // park after first failure
		c.RetryMaxDelay = time.Hour
	})
	acks, err := m.Submit("t", []Submission{sub("bad", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	close(exec.block)
	// Wait until the first failure is journaled (job back in queue with
	// attempts=1, parked on the hour-long backoff).
	waitCond(t, func() bool {
		v, _ := m.Get(acks[0].ID)
		return v.Attempts == 1 && v.State == StateQueued
	})
	m.Kill()

	exec2 := newStubExec()
	exec2.poison["bad"] = true
	m2 := newTestManager(t, dir, exec2, func(c *Config) {
		c.Policy = ipcp.JobPolicy{MaxAttempts: 3}
	})
	defer m2.Kill()
	v := waitTerminal(t, m2, acks[0].ID)
	if v.State != StatePoisoned {
		t.Fatalf("want poisoned, got %+v", v)
	}
	if got := exec2.callCount("bad"); got != 2 {
		t.Fatalf("attempt count must survive crash: want 2 post-crash attempts, got %d", got)
	}
}

func TestDrainCheckpointsQueue(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, dir, exec, func(c *Config) { c.Workers = 1 })

	acks, err := m.Submit("t", []Submission{sub("running", 0), sub("parked", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })
	// Let the running attempt finish during drain.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(exec.block)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Submissions after drain are rejected.
	if _, err := m.Submit("t", []Submission{sub("late", 0)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: want ErrDraining, got %v", err)
	}
	// The checkpoint subsumed all segments: only checkpoint.json and
	// the (possibly empty) post-checkpoint artifacts remain.
	if _, err := os.Stat(filepath.Join(dir, walCheckpointName)); err != nil {
		t.Fatalf("missing checkpoint after drain: %v", err)
	}

	exec2 := newStubExec()
	m2 := newTestManager(t, dir, exec2, nil)
	defer m2.Kill()
	vRun, _, _ := m2.Result(acks[0].ID)
	if vRun.State != StateDone {
		t.Fatalf("finished-during-drain job should replay done, got %+v", vRun)
	}
	vParked := waitTerminal(t, m2, acks[1].ID)
	if vParked.State != StateDone {
		t.Fatalf("parked job should execute after reopen, got %+v", vParked)
	}
	if exec2.callCount("running") != 0 || exec2.callCount("parked") != 1 {
		t.Fatalf("re-execution set wrong: running=%d parked=%d",
			exec2.callCount("running"), exec2.callCount("parked"))
	}
}

func TestDrainTimeoutRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	exec.block = make(chan struct{})
	defer close(exec.block)
	m := newTestManager(t, dir, exec, func(c *Config) { c.Workers = 1 })

	acks, err := m.Submit("t", []Submission{sub("stuck", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	exec2 := newStubExec()
	m2 := newTestManager(t, dir, exec2, nil)
	defer m2.Kill()
	v := waitTerminal(t, m2, acks[0].ID)
	if v.State != StateDone {
		t.Fatalf("drain-interrupted job should re-execute to done, got %+v", v)
	}
}

func TestWeightedFairness(t *testing.T) {
	exec := newStubExec()
	exec.block = make(chan struct{})
	var mu sync.Mutex
	var dispatched []string
	wrapped := execFunc(func(ctx context.Context, spec json.RawMessage, attempt int) ExecOutcome {
		var s stubSpec
		_ = json.Unmarshal(spec, &s)
		mu.Lock()
		dispatched = append(dispatched, s.P[:1]) // tenant prefix
		mu.Unlock()
		return exec.Execute(ctx, spec, attempt)
	})
	m := newTestManager(t, t.TempDir(), wrapped, func(c *Config) {
		c.Workers = 1
		c.Tenants = map[string]ipcp.TenantQuota{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		}
	})
	defer m.Kill()

	// Park the worker on a throwaway job while both backlogs build, so
	// dispatch order reflects WFQ, not arrival order.
	if _, err := m.Submit("warm", []Submission{sub("w0", 0)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 1 })
	for i := 0; i < 9; i++ {
		if _, err := m.Submit("heavy", []Submission{sub(fmt.Sprintf("h%d", i), 0)}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Submit("light", []Submission{sub(fmt.Sprintf("l%d", i), 0)}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	close(exec.block)
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dispatched) == 13
	})
	// Weight-3 heavy should get ~3 dispatches per 1 of weight-1 light
	// (ideal WFQ order: h h h l h h h l ...). Strict FIFO would run
	// all 9 heavy jobs (submitted first) before any light; assert the
	// first 8 post-warm-up dispatches interleave instead.
	mu.Lock()
	order := append([]string(nil), dispatched...)
	mu.Unlock()
	var h, l int
	for _, p := range order[1:9] {
		switch p {
		case "h":
			h++
		case "l":
			l++
		}
	}
	if l < 2 {
		t.Fatalf("light tenant starved by heavy backlog: order=%v", order)
	}
	if h < 5 {
		t.Fatalf("heavy tenant not getting its 3x share: order=%v", order)
	}
}

type execFunc func(ctx context.Context, spec json.RawMessage, attempt int) ExecOutcome

func (f execFunc) Execute(ctx context.Context, spec json.RawMessage, attempt int) ExecOutcome {
	return f(ctx, spec, attempt)
}

func TestInFlightCap(t *testing.T) {
	exec := newStubExec()
	exec.block = make(chan struct{})
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Workers = 4
		c.Tenants = map[string]ipcp.TenantQuota{"capped": {MaxInFlight: 1}}
	})
	defer m.Kill()

	if _, err := m.Submit("capped", []Submission{sub("c0", 0), sub("c1", 0), sub("c2", 0)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Only one may run despite 4 workers.
	time.Sleep(50 * time.Millisecond)
	if got := exec.started.Load(); got != 1 {
		t.Fatalf("MaxInFlight=1: want 1 started, got %d", got)
	}
	// Other tenants are not blocked by capped's limit.
	if _, err := m.Submit("free", []Submission{sub("f0", 0)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCond(t, func() bool { return exec.started.Load() == 2 })
	close(exec.block)
	for _, v := range m.List("") {
		waitTerminal(t, m, v.ID)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	m := newTestManager(t, dir, exec, nil)
	acks, err := m.Submit("t", []Submission{sub("a", 0), sub("b", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for _, a := range acks {
		waitTerminal(t, m, a.ID)
	}
	m.Kill()

	// Append garbage (a torn frame) to the newest segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], 9999) // length pointing past EOF
	binary.LittleEndian.PutUint32(hdr[4:], 42)
	f.Write(hdr[:])
	f.Write([]byte("torn"))
	f.Close()

	exec2 := newStubExec()
	m2 := newTestManager(t, dir, exec2, nil)
	defer m2.Kill()
	for _, a := range acks {
		v, _, ok := m2.Result(a.ID)
		if !ok || v.State != StateDone {
			t.Fatalf("job %s lost to torn tail: %+v", a.ID, v)
		}
	}
	if st := m2.Stats(); st.WAL.CorruptRecords == 0 {
		t.Fatalf("torn tail should be counted as corrupt")
	}
}

func TestWALChecksumCatchesBitrot(t *testing.T) {
	payload := []byte(`{"t":"submit","id":"j-0000000000000000"}`)
	var frame []byte
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, walCRC))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload...)
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	// Flip one payload bit.
	frame[len(frame)-3] ^= 0x01
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, corrupt, err := readSegment(path)
	if err != nil {
		t.Fatalf("readSegment: %v", err)
	}
	if len(recs) != 0 || corrupt != 1 {
		t.Fatalf("bitrot not caught: recs=%d corrupt=%d", len(recs), corrupt)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	exec := newStubExec()
	m := newTestManager(t, dir, exec, func(c *Config) {
		c.SegmentBytes = 256 // force rapid rotation
		c.CompactSegments = 2
	})
	defer m.Kill()
	var ids []string
	for i := 0; i < 20; i++ {
		acks, err := m.Submit("t", []Submission{sub(fmt.Sprintf("c%d", i), 0)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, acks[0].ID)
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	waitCond(t, func() bool { return m.Stats().WAL.Checkpoints > 0 })
	// All jobs still present after compaction.
	for _, id := range ids {
		if v, _, ok := m.Result(id); !ok || v.State != StateDone {
			t.Fatalf("job %s lost to compaction: %+v", id, v)
		}
	}
	// Segment files on disk should be bounded.
	segs, _ := listSegments(dir)
	if len(segs) > 4 {
		t.Fatalf("compaction not bounding segments: %d on disk", len(segs))
	}
}

func TestRetentionPruning(t *testing.T) {
	exec := newStubExec()
	m := newTestManager(t, t.TempDir(), exec, func(c *Config) {
		c.Policy = ipcp.JobPolicy{Retention: 30 * time.Millisecond}
	})
	defer m.Kill()
	acks, err := m.Submit("t", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, m, acks[0].ID)
	waitCond(t, func() bool {
		_, ok := m.Get(acks[0].ID)
		return !ok
	})
	// After pruning, the same fingerprint executes fresh.
	acks2, err := m.Submit("t", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if acks2[0].Deduped {
		t.Fatalf("pruned job must not satisfy dedupe")
	}
	waitTerminal(t, m, acks2[0].ID)
}

func TestSubscribeNotifies(t *testing.T) {
	exec := newStubExec()
	m := newTestManager(t, t.TempDir(), exec, nil)
	defer m.Kill()
	ch, stop := m.Subscribe()
	defer stop()
	acks, err := m.Submit("t", []Submission{sub("a", 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-ch:
			if v, _ := m.Get(acks[0].ID); v.State.Terminal() {
				return
			}
		case <-deadline:
			t.Fatalf("no terminal notification")
		}
	}
}

func TestCorruptCheckpointRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walCheckpointName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Dir: dir, Executor: newStubExec()})
	if err == nil {
		t.Fatalf("corrupt checkpoint must refuse to open")
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never became true")
}
