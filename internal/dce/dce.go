// Package dce implements dead-code detection driven by constant
// conditions, the ingredient of the paper's "complete propagation"
// (Table 3, column 3): after an interprocedural propagation round, the
// discovered constants can prove branches dead; removing them can
// eliminate conflicting definitions and expose additional constants, so
// jump functions are rebuilt on the pruned program and propagation runs
// again from scratch.
package dce

import (
	"repro/internal/cfg"
	"repro/internal/intra"
	"repro/internal/ssa"
)

// Result summarizes dead code found in one procedure.
type Result struct {
	Proc *ssa.Func
	// DeadBlocks lists basic blocks that can never execute under the
	// analyzed entry environment.
	DeadBlocks []*cfg.Block
	// DeadInstrs counts instructions inside dead blocks.
	DeadInstrs int
	// FoldedBranches counts conditional terminators whose condition is
	// a known constant (one successor edge is dead).
	FoldedBranches int
}

// Found reports whether any dead code was detected.
func (r *Result) Found() bool { return len(r.DeadBlocks) > 0 || r.FoldedBranches > 0 }

// Analyze inspects a pruned intra result for dead code. The result is
// meaningful only when the analysis ran with Prune enabled.
func Analyze(fn *ssa.Func, r *intra.Result) *Result {
	out := &Result{Proc: fn}
	for _, blk := range fn.Graph.Blocks {
		if blk == fn.Graph.Exit {
			continue
		}
		if !r.BlockExecutable(blk) {
			out.DeadBlocks = append(out.DeadBlocks, blk)
			out.DeadInstrs += len(blk.Instrs)
			continue
		}
		if blk.Term.Kind == cfg.TermCond {
			live0 := r.EdgeExecutable(blk, 0)
			live1 := r.EdgeExecutable(blk, 1)
			if live0 != live1 {
				out.FoldedBranches++
			}
		}
	}
	return out
}

// TotalDeadInstrs sums dead instructions across procedures; the
// complete-propagation loop uses it as its progress measure.
func TotalDeadInstrs(results []*Result) int {
	n := 0
	for _, r := range results {
		n += r.DeadInstrs
	}
	return n
}
