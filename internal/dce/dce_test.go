package dce

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/dom"
	"repro/internal/intra"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/ssa"
)

func analyzeProc(t *testing.T, src, name string, prune bool, entry map[ssa.Var]int64) (*ssa.Func, *intra.Result, *sem.Program) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	n := cg.Nodes[name]
	dt := dom.Compute(n.CFG)
	fn := ssa.Build(n.CFG, dt, ssa.Options{Kills: mod.Kills, Globals: prog.Globals()})
	res := intra.Analyze(fn, intra.Options{Prune: prune, Entry: entry})
	return fn, res, prog
}

func TestDeadBranchDetected(t *testing.T) {
	src := `PROGRAM P
INTEGER K, M
K = 1
IF (K .EQ. 2) THEN
  M = 7
  M = M + 1
ELSE
  M = 9
ENDIF
PRINT *, M
END
`
	fn, res, _ := analyzeProc(t, src, "P", true, nil)
	r := Analyze(fn, res)
	if !r.Found() {
		t.Fatal("expected dead code")
	}
	if len(r.DeadBlocks) == 0 || r.DeadInstrs != 2 {
		t.Errorf("dead blocks = %d, dead instrs = %d (want 2)", len(r.DeadBlocks), r.DeadInstrs)
	}
	if r.FoldedBranches != 1 {
		t.Errorf("folded branches = %d, want 1", r.FoldedBranches)
	}
}

func TestNoDeadCodeWithoutPruning(t *testing.T) {
	src := `PROGRAM P
INTEGER K, M
K = 1
IF (K .EQ. 2) THEN
  M = 7
ELSE
  M = 9
ENDIF
PRINT *, M
END
`
	fn, res, _ := analyzeProc(t, src, "P", false, nil)
	r := Analyze(fn, res)
	if r.Found() {
		t.Errorf("without pruning nothing should be dead: %+v", r)
	}
}

func TestEntryEnvironmentDrivesDCE(t *testing.T) {
	// The branch depends on the formal; only with an interprocedural
	// entry constant does the arm die.
	src := `PROGRAM MAIN
CALL S(1)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
PRINT *, M
END
`
	fn, res, _ := analyzeProc(t, src, "S", true, nil)
	if Analyze(fn, res).Found() {
		t.Error("without entry env the branch must stay live")
	}

	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	n := cg.Nodes["S"]
	dt := dom.Compute(n.CFG)
	fn2 := ssa.Build(n.CFG, dt, ssa.Options{Kills: mod.Kills, Globals: prog.Globals()})
	s := prog.Procs["S"]
	res2 := intra.Analyze(fn2, intra.Options{
		Prune: true,
		Entry: map[ssa.Var]int64{ssa.VarOf(s.Formals[0]): 1},
	})
	r := Analyze(fn2, res2)
	if !r.Found() || r.DeadInstrs != 1 {
		t.Errorf("with K=1 the else arm should die: %+v", r)
	}
}

func TestTotalDeadInstrs(t *testing.T) {
	src := `PROGRAM P
INTEGER K, M
K = 1
IF (K .EQ. 2) THEN
  M = 7
ENDIF
END
`
	fn, res, _ := analyzeProc(t, src, "P", true, nil)
	r := Analyze(fn, res)
	if got := TotalDeadInstrs([]*Result{r, r}); got != 2*r.DeadInstrs {
		t.Errorf("TotalDeadInstrs = %d", got)
	}
	if TotalDeadInstrs(nil) != 0 {
		t.Error("empty total should be 0")
	}
}

func TestGotoUnreachableCodeIsPrunedByCFGNotDCE(t *testing.T) {
	// Statically unreachable code never reaches the analyzer (the CFG
	// builder drops it), so DCE reports nothing extra.
	src := `PROGRAM P
INTEGER I
I = 1
GOTO 10
I = 2
10 PRINT *, I
END
`
	fn, res, _ := analyzeProc(t, src, "P", true, nil)
	r := Analyze(fn, res)
	if r.Found() {
		t.Errorf("statically unreachable code should already be gone: %+v", r)
	}
}
