package memo

import (
	"testing"
	"time"

	"repro/internal/callgraph"
	"repro/internal/jump"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/subst"
	"repro/internal/suite"
	"repro/internal/symbolic"
)

// TestPhaseProfile is a development probe: it prints where the pipeline
// spends its time on the benchmark program so cache design decisions are
// grounded in numbers. Run with -v; it asserts nothing.
func TestPhaseProfile(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Skip("no spec77")
	}
	src := suite.Source(spec)
	t.Logf("source: %d bytes", len(src))

	best := func(name string, f func()) time.Duration {
		var min time.Duration
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			d := time.Since(start)
			if min == 0 || d < min {
				min = d
			}
		}
		t.Logf("%-12s %v", name, min)
		return min
	}

	var diags source.ErrorList
	f := parser.ParseSource("spec77.f", src, &diags)
	best("parse", func() {
		var d source.ErrorList
		parser.ParseSource("spec77.f", src, &d)
	})
	prog, err := sem.AnalyzeParallelCtx(nil, f, &diags, 1)
	if err != nil || diags.Err() != nil {
		t.Fatalf("sem: %v %v", err, diags.Err())
	}
	best("sem", func() {
		var d source.ErrorList
		f2 := parser.ParseSource("spec77.f", src, &d)
		_, _ = sem.AnalyzeParallelCtx(nil, f2, &d, 1)
	})
	cg := callgraph.Build(prog)
	best("callgraph", func() { callgraph.Build(prog) })
	mod := modref.Compute(cg)
	best("modref", func() { modref.Compute(cg) })
	jc := jump.Config{Kind: jump.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	fns, err := jump.Build(nil, cg, mod, symbolic.NewBuilder(), jc, nil)
	if err != nil {
		t.Fatal(err)
	}
	best("jump", func() {
		_, _ = jump.Build(nil, cg, mod, symbolic.NewBuilder(), jc, nil)
	})
	best("subst", func() {
		subst.Run(cg, mod, subst.Options{
			UseMOD: true, UseReturnJFs: true, Returns: fns.Returns,
			Builder: symbolic.NewBuilder(), Parallelism: 1,
		})
	})
}
