package memo

import (
	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/intra"
	"repro/internal/jump"
	"repro/internal/modref"
	"repro/internal/sem"
	"repro/internal/subst"
	"repro/internal/symbolic"
)

// jfArtifact is one procedure's jump-function build product in
// world-portable form: expressions reference formals by index and
// globals by layout key, so a different world with an identical unit,
// callee closure, and COMMON layout can relink them into its own
// builder. Artifacts never contain opaque leaves (the restriction rules
// filter them), which is checked again at store time.
type jfArtifact struct {
	hasSummary bool
	sumFormals map[int]*symbolic.Expr
	sumGlobals map[string]*symbolic.Expr // by GlobalVar.Key()
	sumResult  *symbolic.Expr
	sites      []siteArtifact
	trunc      int
}

type siteArtifact struct {
	callee  string
	formals []*symbolic.Expr // indexed like the callee's formals; nil = ⊥
	globals map[string]*symbolic.Expr
	dead    bool
}

// substArtifact is one procedure's substitution decision set. The
// replacement map is keyed by the chunk's own AST nodes, so it is valid
// for exactly the worlds sharing this chunk's parse (which is why it
// lives on the chunkEntry and dies with it).
type substArtifact struct {
	count int
	repl  map[ast.Expr]string
}

// exprBytes estimates an expression's retained size.
func exprBytes(e *symbolic.Expr) int64 {
	if e == nil {
		return 0
	}
	return int64(e.Size()) * 112
}

// ---------------------------------------------------------------------
// core.MemoHooks implementation

// hooks adapts one (cache, world) pair to the driver's memo interface.
type hooks struct {
	c *Cache
	w *world
}

func (h *hooks) Graph() (*callgraph.Graph, *modref.Info) { return h.w.graph, h.w.mod }

// funcsEntry is a cached whole-program jump-function build for one
// world and configuration fingerprint. Procs are stored without their
// SSA/value-numbering state (only complete propagation reads those, and
// complete propagation bypasses this cache).
type funcsEntry struct {
	returns map[*sem.Procedure]*intra.ReturnSummary
	procs   map[*sem.Procedure]*jump.ProcFunctions
	trunc   int
}

func (h *hooks) Funcs(c core.Config, jc jump.Config, b *symbolic.Builder) (*jump.Functions, int, jump.Memo) {
	fp := jumpFP(c)
	h.c.mu.Lock()
	if fe := h.w.funcsCache[fp]; fe != nil {
		h.c.hits++
		h.c.mu.Unlock()
		return &jump.Functions{
			Config: jc, Graph: h.w.graph, Mod: h.w.mod, Builder: b,
			Returns: fe.returns, Procs: fe.procs,
		}, fe.trunc, nil
	}
	h.c.misses++

	// Whole-build miss: prepare the per-unit memo. Artifact lookups and
	// counters happen under the lock; relinking (which interns into the
	// attempt's private builder) happens outside it.
	m := &jumpMemo{
		h:     h,
		ready: make(map[*sem.Procedure]*jump.ProcMemo),
		keys:  make(map[*sem.Procedure]string, len(h.w.prog.Order)),
	}
	type pending struct {
		p   *sem.Procedure
		n   *callgraph.Node
		art *jfArtifact
	}
	var hitArts []pending
	for _, n := range h.w.graph.Order {
		p := n.Proc
		ce := h.w.procChunk[p]
		if ce == nil {
			continue
		}
		key := hashStrings(fp, h.w.closures[p], h.w.globalsFP)
		m.keys[p] = key
		if art := ce.jfArts[key]; art != nil {
			h.c.hits++
			if e := h.c.chunks[ce.key]; e != nil && e.chunk == ce {
				h.c.touch(e)
			}
			hitArts = append(hitArts, pending{p, n, art})
		} else {
			h.c.misses++
		}
	}
	h.c.mu.Unlock()

	for _, pa := range hitArts {
		if pm := h.w.relinkJF(pa.art, pa.p, pa.n, b); pm != nil {
			m.ready[pa.p] = pm
		}
	}
	return nil, 0, m
}

func (h *hooks) StoreFuncs(c core.Config, fns *jump.Functions, trunc int) {
	fp := jumpFP(c)
	fe := &funcsEntry{
		returns: fns.Returns,
		procs:   make(map[*sem.Procedure]*jump.ProcFunctions, len(fns.Procs)),
		trunc:   trunc,
	}
	var bytes int64 = 1024
	for _, sum := range fns.Returns {
		if sum == nil {
			continue
		}
		for _, e := range sum.Formals {
			bytes += exprBytes(e)
		}
		for _, e := range sum.Globals {
			bytes += exprBytes(e)
		}
		bytes += exprBytes(sum.Result) + 128
	}
	for p, pf := range fns.Procs {
		if pf == nil {
			continue
		}
		// Drop the SSA and value-numbering state: propagation and
		// substitution never read them, and they dominate retained size.
		fe.procs[p] = &jump.ProcFunctions{Proc: pf.Proc, Sites: pf.Sites}
		for _, sf := range pf.Sites {
			for _, e := range sf.Formals {
				bytes += exprBytes(e)
			}
			for _, e := range sf.Globals {
				bytes += exprBytes(e)
			}
			bytes += 160
		}
	}
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if h.w.evicted {
		return
	}
	if _, dup := h.w.funcsCache[fp]; dup {
		return // a concurrent identical attempt won the race
	}
	h.w.funcsCache[fp] = fe
	if e := h.c.worlds[h.w.key]; e != nil && e.world == h.w {
		h.c.addBytes(e, bytes)
	}
}

// substKeyParts renders the whole-program substitution cache key and the
// per-procedure entry fingerprints it is built from. The "noret" flag
// separates runs without return summaries (the all-⊥ fallback analysis)
// from normal runs of the same configuration.
func (h *hooks) substKeyParts(c core.Config, opts subst.Options) (whole string, perProc map[*sem.Procedure]string) {
	base := substFP(c)
	if opts.UseReturnJFs && len(opts.Returns) == 0 {
		base += ";noret"
	}
	perProc = make(map[*sem.Procedure]string, len(h.w.prog.Order))
	parts := make([]string, 0, 2*len(h.w.prog.Order)+1)
	parts = append(parts, base)
	for _, p := range h.w.prog.Order {
		efp := entryFP(p, opts.Entry(p))
		perProc[p] = efp
		parts = append(parts, p.Name, efp)
	}
	return hashStrings(parts...), perProc
}

func (h *hooks) Subst(c core.Config, opts subst.Options) (*subst.Result, subst.Memo) {
	if opts.Entry == nil {
		return nil, nil
	}
	whole, perProc := h.substKeyParts(c, opts)
	base := substFP(c)
	if opts.UseReturnJFs && len(opts.Returns) == 0 {
		base += ";noret"
	}

	h.c.mu.Lock()
	if res := h.w.substCache[whole]; res != nil {
		h.c.hits++
		h.c.mu.Unlock()
		return res, nil
	}
	h.c.misses++
	m := &substMemo{
		h:     h,
		whole: whole,
		ready: make(map[*sem.Procedure]*substArtifact),
		keys:  make(map[*sem.Procedure]string, len(h.w.prog.Order)),
	}
	for _, p := range h.w.prog.Order {
		ce := h.w.procChunk[p]
		if ce == nil {
			continue
		}
		key := hashStrings(base, perProc[p], h.w.closures[p], h.w.globalsFP)
		m.keys[p] = key
		if art := ce.substArts[key]; art != nil {
			h.c.hits++
			m.ready[p] = art
			if e := h.c.chunks[ce.key]; e != nil && e.chunk == ce {
				h.c.touch(e)
			}
		} else {
			h.c.misses++
		}
	}
	h.c.mu.Unlock()
	return nil, m
}

func (h *hooks) StoreSubst(c core.Config, opts subst.Options, res *subst.Result) {
	if opts.Entry == nil || res == nil {
		return
	}
	whole, _ := h.substKeyParts(c, opts)
	bytes := int64(len(res.Replacements))*96 + int64(len(res.PerProc))*64 + 512
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if h.w.evicted {
		return
	}
	if _, dup := h.w.substCache[whole]; dup {
		return
	}
	h.w.substCache[whole] = res
	if e := h.c.worlds[h.w.key]; e != nil && e.world == h.w {
		h.c.addBytes(e, bytes)
	}
}

// ---------------------------------------------------------------------
// jump.Memo implementation

type jumpMemo struct {
	h     *hooks
	ready map[*sem.Procedure]*jump.ProcMemo
	keys  map[*sem.Procedure]string
}

// Lookup is read-only over maps frozen before Build starts, so
// concurrent workers may call it freely.
func (m *jumpMemo) Lookup(p *sem.Procedure) *jump.ProcMemo { return m.ready[p] }

func (m *jumpMemo) Store(p *sem.Procedure, pm *jump.ProcMemo) {
	key := m.keys[p]
	if key == "" || pm == nil {
		return
	}
	art := portableJF(pm)
	if art == nil {
		return
	}
	var bytes int64 = 256
	for _, e := range art.sumFormals {
		bytes += exprBytes(e)
	}
	for _, e := range art.sumGlobals {
		bytes += exprBytes(e)
	}
	bytes += exprBytes(art.sumResult)
	for _, sa := range art.sites {
		for _, e := range sa.formals {
			bytes += exprBytes(e)
		}
		for _, e := range sa.globals {
			bytes += exprBytes(e)
		}
		bytes += 160
	}
	c, w := m.h.c, m.h.w
	c.mu.Lock()
	defer c.mu.Unlock()
	ce := w.procChunk[p]
	if ce == nil || ce.evicted {
		return
	}
	if _, dup := ce.jfArts[key]; dup {
		return
	}
	ce.jfArts[key] = art
	if e := c.chunks[ce.key]; e != nil && e.chunk == ce {
		c.addBytes(e, bytes)
	}
}

// portableJF converts a build product to world-portable form, refusing
// anything that would not round-trip (opaque leaves; there should be
// none — the restriction rules filter them — but a silent wrong-reuse
// is the one failure mode this cache must never have).
func portableJF(pm *jump.ProcMemo) *jfArtifact {
	art := &jfArtifact{trunc: pm.Truncated}
	ok := func(e *symbolic.Expr) bool { return e == nil || !e.HasOpaque() }
	if sum := pm.Summary; sum != nil {
		art.hasSummary = true
		art.sumFormals = make(map[int]*symbolic.Expr, len(sum.Formals))
		art.sumGlobals = make(map[string]*symbolic.Expr, len(sum.Globals))
		for i, e := range sum.Formals {
			if !ok(e) {
				return nil
			}
			art.sumFormals[i] = e
		}
		for g, e := range sum.Globals {
			if !ok(e) {
				return nil
			}
			art.sumGlobals[g.Key()] = e
		}
		if !ok(sum.Result) {
			return nil
		}
		art.sumResult = sum.Result
	}
	art.sites = make([]siteArtifact, len(pm.Sites))
	for j, sf := range pm.Sites {
		sa := siteArtifact{
			callee:  sf.Callee.Name,
			formals: make([]*symbolic.Expr, len(sf.Formals)),
			globals: make(map[string]*symbolic.Expr, len(sf.Globals)),
			dead:    sf.Dead,
		}
		for i, e := range sf.Formals {
			if !ok(e) {
				return nil
			}
			sa.formals[i] = e
		}
		for g, e := range sf.Globals {
			if !ok(e) {
				return nil
			}
			sa.globals[g.Key()] = e
		}
		art.sites[j] = sa
	}
	return art
}

// relinkJF re-expresses a portable artifact in world w: every formal
// leaf resolves by position (with a name check), every global leaf by
// layout key, and sites align one-to-one with the world's CFG sites.
// Any mismatch abandons the artifact (nil) and the procedure is rebuilt
// from source — relinking is an optimization, never an authority.
func (w *world) relinkJF(art *jfArtifact, p *sem.Procedure, node *callgraph.Node, b *symbolic.Builder) *jump.ProcMemo {
	bad := false
	repl := func(leaf *symbolic.Expr) *symbolic.Expr {
		switch leaf.Op {
		case symbolic.OpParam:
			i := leaf.Param.FormalIndex
			if i < 0 || i >= len(p.Formals) || p.Formals[i].Name != leaf.Param.Name {
				bad = true
				return b.Const(0)
			}
			return b.ParamLeaf(p.Formals[i])
		case symbolic.OpGlobal:
			if g := w.globalByKey[leaf.Global.Key()]; g != nil && g.Name == leaf.Global.Name {
				return b.GlobalLeaf(g)
			}
			bad = true
			return b.Const(0)
		}
		bad = true
		return b.Const(0)
	}
	conv := func(e *symbolic.Expr) *symbolic.Expr {
		if e == nil {
			return nil
		}
		return b.Substitute(e, repl)
	}

	pm := &jump.ProcMemo{Truncated: art.trunc}
	if art.hasSummary {
		sum := &intra.ReturnSummary{
			Proc:    p,
			Formals: make(map[int]*symbolic.Expr, len(art.sumFormals)),
			Globals: make(map[*sem.GlobalVar]*symbolic.Expr, len(art.sumGlobals)),
		}
		for i, e := range art.sumFormals {
			if i < 0 || i >= len(p.Formals) {
				return nil
			}
			sum.Formals[i] = conv(e)
		}
		for key, e := range art.sumGlobals {
			g := w.globalByKey[key]
			if g == nil {
				return nil
			}
			sum.Globals[g] = conv(e)
		}
		sum.Result = conv(art.sumResult)
		pm.Summary = sum
	}

	// The world's sites for p, filtered exactly as buildForwards filters
	// them (sites whose callee is not a program procedure are skipped).
	var sites []*jump.SiteFunctions
	for _, site := range node.CFG.Sites {
		calleeNode := w.graph.Nodes[site.Callee]
		if calleeNode == nil {
			continue
		}
		sites = append(sites, &jump.SiteFunctions{Site: site, Callee: calleeNode.Proc})
	}
	if len(sites) != len(art.sites) {
		return nil
	}
	for j, sf := range sites {
		sa := &art.sites[j]
		if sf.Callee.Name != sa.callee || len(sf.Callee.Formals) != len(sa.formals) {
			return nil
		}
		sf.Dead = sa.dead
		sf.Formals = make([]*symbolic.Expr, len(sa.formals))
		for i, e := range sa.formals {
			sf.Formals[i] = conv(e)
		}
		sf.Globals = make(map[*sem.GlobalVar]*symbolic.Expr, len(sa.globals))
		for key, e := range sa.globals {
			g := w.globalByKey[key]
			if g == nil {
				return nil
			}
			sf.Globals[g] = conv(e)
		}
	}
	if bad {
		return nil
	}
	pm.Sites = sites
	return pm
}

// ---------------------------------------------------------------------
// subst.Memo implementation

type substMemo struct {
	h     *hooks
	whole string
	ready map[*sem.Procedure]*substArtifact
	keys  map[*sem.Procedure]string
}

// Lookup is read-only over maps frozen before Run starts.
func (m *substMemo) Lookup(p *sem.Procedure) (int, map[ast.Expr]string, bool) {
	if art := m.ready[p]; art != nil {
		return art.count, art.repl, true
	}
	return 0, nil, false
}

func (m *substMemo) Store(p *sem.Procedure, count int, repl map[ast.Expr]string) {
	key := m.keys[p]
	if key == "" {
		return
	}
	c, w := m.h.c, m.h.w
	c.mu.Lock()
	defer c.mu.Unlock()
	ce := w.procChunk[p]
	if ce == nil || ce.evicted {
		return
	}
	if _, dup := ce.substArts[key]; dup {
		return
	}
	ce.substArts[key] = &substArtifact{count: count, repl: repl}
	if e := c.chunks[ce.key]; e != nil && e.chunk == ce {
		c.addBytes(e, int64(len(repl))*96+128)
	}
}
