package memo

import (
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/sem"
	"repro/internal/source"
)

// World is the exported handle to a cached front-end build: the parsed
// and checked program plus the hooks that let the core driver reuse
// per-unit artifacts. Handles are cheap; worlds are shared.
type World struct {
	c *Cache
	w *world
}

// Lookup returns the world for the given sources, building and caching
// it on a miss. hit reports whether an already-built world was reused
// (as opposed to built by this call). ok is false when the sources are
// ineligible for incremental analysis (oversized, unsplittable, or
// erroneous) and the caller must use the plain uncached pipeline, which
// reproduces any diagnostics exactly.
func (c *Cache) Lookup(files []File) (w World, hit, ok bool) {
	ww, hit, ok := c.lookupWorld(files)
	if !ok {
		return World{}, false, false
	}
	return World{c: c, w: ww}, hit, true
}

// File returns the merged AST (units in source order).
func (w World) File() *ast.File { return w.w.file }

// Prog returns the checked program.
func (w World) Prog() *sem.Program { return w.w.prog }

// Diags returns the front end's warning diagnostics, to be replayed
// into the caller's diagnostic list (worlds never carry errors).
func (w World) Diags() []source.Diagnostic { return w.w.diags }

// Hooks returns the driver-side memoization interface for this world.
func (w World) Hooks() core.MemoHooks { return &hooks{c: w.c, w: w.w} }
