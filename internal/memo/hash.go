package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/sem"
	"repro/internal/ssa"
)

// hashStrings content-addresses a sequence of strings. Each part is
// length-prefixed so that concatenation ambiguity cannot alias two
// different sequences to one key.
func hashStrings(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ProgramFingerprint content-addresses a whole analysis request — the
// exact source files plus the configuration axes that select which
// memoized artifacts the analysis can reuse (jump-function kind, MOD,
// return jump functions, full substitution, gating, completeness, the
// expression-size budget, and the abstract domain). Axes that never
// change the cached artifacts — parallelism, solver choice, step/round
// budgets, fail-fast, the cache handle itself — are deliberately
// excluded, so requests differing only in those hash identically.
//
// The fingerprint is the natural routing key for a fleet of analysis
// servers: sending equal fingerprints to the same backend maximizes
// that backend's per-unit memo reuse, because this is the same hashing
// discipline the cache keys use. The leading version tag keeps the key
// space disjoint from every other hashStrings use.
func ProgramFingerprint(files []File, c core.Config) string {
	parts := make([]string, 0, 2*len(files)+2)
	parts = append(parts, "ipcp-program-fp/v1")
	for _, f := range files {
		parts = append(parts, f.Name, f.Src)
	}
	parts = append(parts, substFP(c))
	return hashStrings(parts...)
}

// jumpFP fingerprints everything the jump-function construction phase
// reads from a configuration. Solver choice, step budgets, deadlines,
// and parallelism are deliberately excluded: none of them changes the
// expressions built (parallel construction is bit-identical by the
// repo's standing guarantee, and the deadline can only abort a build —
// aborted builds are never cached). The abstract domain is excluded
// too: jump-function construction is symbolic and domain-independent,
// so the cached expressions are shared across domains by design — only
// their evaluation (the solver's transfer step) is per-domain.
func jumpFP(c core.Config) string {
	return fmt.Sprintf("k=%d;mod=%t;ret=%t;fs=%t;g=%t;mx=%d",
		c.Jump.Kind, c.Jump.UseMOD, c.Jump.UseReturnJFs,
		c.Jump.FullSubstitution, c.Jump.Gated, c.Budget.MaxExprSize)
}

// substFP fingerprints the configuration axes the substitution pass
// reads, beyond the entry environments (fingerprinted separately). The
// domain is included: two domains can prove the same constant entry
// environment yet drive pruning and dead-site marking differently, so
// substitution decisions are never shared across domains.
func substFP(c core.Config) string {
	return jumpFP(c) + fmt.Sprintf(";prune=%t;dom=%s", c.Complete, domain.NameOf(c.Domain))
}

// entryFP renders one procedure's constant entry environment as a
// canonical string. The environment is the substitution pass's only
// input from the solver, so two analyses with equal entryFP (and equal
// closure/config/layout fingerprints) substitute identically.
func entryFP(p *sem.Procedure, env map[ssa.Var]int64) string {
	if len(env) == 0 {
		return ""
	}
	parts := make([]string, 0, len(env))
	for v, k := range env {
		parts = append(parts, fmt.Sprintf("%s=%d", v, k))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// EntryFP exposes entryFP to the session subsystem, whose in-place
// substitution reuse is gated on the same discipline as the
// content-addressed cache: a procedure's stored substitution decisions
// are valid only while its constant entry environment fingerprints
// identically.
func EntryFP(p *sem.Procedure, env map[ssa.Var]int64) string { return entryFP(p, env) }

// globalsFP fingerprints the program's COMMON layout: every global's
// key (block#index), canonical name, type, and array-ness, in the
// program's canonical order. Return and forward jump functions range
// over the full global set (an unmodified global summarizes to itself),
// so any layout change anywhere invalidates every per-unit artifact.
func globalsFP(prog *sem.Program) string {
	var b strings.Builder
	for _, g := range prog.Globals() {
		fmt.Fprintf(&b, "%s|%s|%d|%t;", g.Key(), g.Name, g.Type, g.IsArray)
	}
	return hashStrings(b.String())
}
