package memo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/subst"
)

// File is one input source file.
type File struct {
	Name string
	Src  string
}

// world is everything the front end derives from one exact source text:
// the merged AST, the checked program, the call graph, MOD summaries,
// warning diagnostics to replay, and the per-configuration caches of
// whole-program artifacts. A world is immutable once built (semantic
// checking and CFG construction finish inside the build), so concurrent
// analyses may share one world freely; only the artifact caches hanging
// off it mutate, under the cache lock.
type world struct {
	key   string
	file  *ast.File
	prog  *sem.Program
	graph *callgraph.Graph
	mod   *modref.Info
	diags []source.Diagnostic // warnings only; errors preclude a world

	chunks      []*chunkEntry // aligned with file.Units
	procChunk   map[*sem.Procedure]*chunkEntry
	closures    map[*sem.Procedure]string // transitive callee-closure hash
	globalsFP   string
	globalByKey map[string]*sem.GlobalVar

	evicted bool // under Cache.mu: stores into this world are dropped

	// Whole-program caches, keyed by configuration fingerprints.
	// Guarded by Cache.mu.
	funcsCache map[string]*funcsEntry
	substCache map[string]*subst.Result
}

// chunkEntry is one parsed program unit, shared by every world whose
// source contains the identical chunk text at the identical line. The
// artifact maps memoize the expensive per-unit analyses across worlds;
// they die with the chunk.
type chunkEntry struct {
	key   string
	file  *ast.File // exactly one unit
	diags []source.Diagnostic

	evicted bool // under Cache.mu: stores into this chunk are dropped

	// Guarded by Cache.mu.
	jfArts    map[string]*jfArtifact
	substArts map[string]*substArtifact
}

func (ce *chunkEntry) unit() *ast.Unit { return ce.file.Units[0] }

// lookupWorld returns the front-end world for the given sources,
// building and caching it on a miss. hit reports whether an
// already-built world was reused. ok is false when the sources are
// ineligible for incremental analysis (oversized, unsplittable, or
// erroneous) — the caller must fall back to the plain uncached
// pipeline, which reproduces any diagnostics exactly.
func (c *Cache) lookupWorld(files []File) (w *world, hit, ok bool) {
	if len(files) == 0 {
		return nil, false, false
	}
	total := 0
	keyParts := make([]string, 0, 2*len(files))
	for _, f := range files {
		total += len(f.Src)
		keyParts = append(keyParts, f.Name, f.Src)
	}
	if total > parser.MaxSourceBytes {
		return nil, false, false // the uncached parser rejects this with a diagnostic
	}
	key := hashStrings(keyParts...)

	c.mu.Lock()
	for {
		if e := c.worlds[key]; e != nil {
			c.hits++
			c.touch(e)
			c.mu.Unlock()
			return e.world, true, true
		}
		call := c.building[key]
		if call == nil {
			break
		}
		// Another goroutine is building this world; wait for it.
		c.mu.Unlock()
		<-call.done
		if call.w == nil {
			return nil, false, false
		}
		c.mu.Lock()
		// The finished world is normally in the map now; loop to take
		// the hit path (it may also have been evicted already — then we
		// rebuild, which is correct, just unlucky).
		if e := c.worlds[key]; e != nil {
			c.hits++
			c.touch(e)
			c.mu.Unlock()
			return e.world, true, true
		}
		c.mu.Unlock()
		return call.w, true, true
	}
	c.misses++
	call := &worldCall{done: make(chan struct{})}
	c.building[key] = call
	c.mu.Unlock()

	// Build outside the lock; chunk lookups re-acquire it briefly.
	// On any exit — including a panic from an injected front-end fault —
	// release the single-flight slot so waiters never hang.
	built := false
	defer func() {
		c.mu.Lock()
		delete(c.building, key)
		if built {
			call.w = w
			e := &entry{key: key, bytes: worldBytes(total), world: w}
			c.insert(e, c.worlds)
		}
		c.mu.Unlock()
		close(call.done)
	}()

	w = c.buildWorld(key, files)
	if w == nil {
		return nil, false, false
	}
	built = true
	return w, false, true
}

func worldBytes(srcLen int) int64  { return int64(srcLen)*12 + 8192 }
func chunkBytes(textLen int) int64 { return int64(textLen)*6 + 1024 }

// buildWorld runs the front end over content-addressed chunks. Any
// irregularity — a chunk that does not parse to exactly one clean unit,
// a semantic error — returns nil, and the caller falls back to the
// uncached pipeline. Mis-splitting can therefore cost time, never
// correctness.
func (c *Cache) buildWorld(key string, files []File) *world {
	w := &world{
		key:        key,
		procChunk:  make(map[*sem.Procedure]*chunkEntry),
		closures:   make(map[*sem.Procedure]string),
		funcsCache: make(map[string]*funcsEntry),
		substCache: make(map[string]*subst.Result),
	}
	merged := &ast.File{}
	var diags source.ErrorList
	for _, f := range files {
		chunks, ok := splitUnits(f.Name, f.Src)
		if !ok {
			return nil
		}
		for _, ch := range chunks {
			ce := c.parseChunk(ch)
			if ce == nil {
				return nil
			}
			if merged.Source == nil {
				merged.Source = ce.file.Source
			}
			merged.Units = append(merged.Units, ce.unit())
			w.chunks = append(w.chunks, ce)
			diags.Diags = append(diags.Diags, ce.diags...)
		}
	}
	if len(merged.Units) == 0 {
		return nil
	}
	w.file = merged

	prog, err := sem.AnalyzeParallelCtx(nil, merged, &diags, 0)
	if err != nil || diags.Err() != nil {
		return nil // semantic errors: the uncached path reproduces them
	}
	w.prog = prog
	w.diags = diags.Diags
	w.graph = callgraph.Build(prog)
	w.mod = modref.Compute(w.graph)
	w.globalsFP = globalsFP(prog)
	w.globalByKey = make(map[string]*sem.GlobalVar)
	for _, g := range prog.Globals() {
		w.globalByKey[g.Key()] = g
	}

	unitChunk := make(map[*ast.Unit]*chunkEntry, len(w.chunks))
	for _, ce := range w.chunks {
		unitChunk[ce.unit()] = ce
	}
	for _, p := range prog.Order {
		if ce := unitChunk[p.Unit]; ce != nil {
			w.procChunk[p] = ce
		}
	}
	w.computeClosures()
	return w
}

// parseChunk parses one unit chunk, memoized on (file, start line,
// text). The chunk text is padded with newlines so every token keeps
// its original line and column; byte offsets shift, but nothing
// user-visible renders them. A chunk must parse to exactly one unit
// with no errors to be usable.
func (c *Cache) parseChunk(ch chunk) *chunkEntry {
	key := hashStrings(ch.file, fmt.Sprint(ch.startLine), ch.text)
	c.mu.Lock()
	if e := c.chunks[key]; e != nil {
		c.hits++
		c.touch(e)
		c.mu.Unlock()
		return e.chunk
	}
	c.misses++
	c.mu.Unlock()

	padded := strings.Repeat("\n", ch.startLine-1) + ch.text
	var diags source.ErrorList
	f := parser.ParseSource(ch.file, padded, &diags)
	if diags.Err() != nil || len(f.Units) != 1 {
		return nil
	}
	ce := &chunkEntry{
		key:       key,
		file:      f,
		diags:     diags.Diags,
		jfArts:    make(map[string]*jfArtifact),
		substArts: make(map[string]*substArtifact),
	}
	c.mu.Lock()
	if e := c.chunks[key]; e != nil {
		// A concurrent world build parsed the same chunk first; share its
		// AST so per-unit artifacts stay shareable too.
		c.touch(e)
		c.mu.Unlock()
		return e.chunk
	}
	c.insert(&entry{key: key, bytes: chunkBytes(len(ch.text)), chunk: ce}, c.chunks)
	c.mu.Unlock()
	return ce
}

// computeClosures hashes, for every procedure, the sorted set of chunk
// keys of every procedure reachable from it in the call graph
// (including itself). Jump functions, return summaries, and
// substitution decisions of a unit depend on its callees' bodies only
// transitively through this set, so the hash is the unit artifact's
// dependency fingerprint. Procedures in one SCC share a reach set.
func (w *world) computeClosures() {
	// BottomUp lists every member of a callee SCC before any member of a
	// caller SCC, so one sweep completes each SCC's set before it is
	// consumed.
	sccReach := make(map[int]map[string]bool)
	for _, n := range w.graph.BottomUp() {
		set := sccReach[n.SCC]
		if set == nil {
			set = make(map[string]bool)
			sccReach[n.SCC] = set
		}
		if ce := w.procChunk[n.Proc]; ce != nil {
			set[ce.key] = true
		} else {
			// No chunk identity for this unit: poison the set so nothing
			// depending on it ever matches a cache key.
			set["!unchunked:"+n.Proc.Name] = true
		}
		for _, site := range n.Out {
			m := w.graph.Nodes[site.Callee]
			if m == nil || m.SCC == n.SCC {
				continue
			}
			for k := range sccReach[m.SCC] {
				set[k] = true
			}
		}
	}
	for _, n := range w.graph.Order {
		set := sccReach[n.SCC]
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.closures[n.Proc] = hashStrings(keys...)
	}
}
