package memo

import (
	"sync"

	"repro/internal/core"
	"repro/internal/sem"
)

// maxContextsPerProc bounds how many distinct incoming rows one
// procedure may retain. Real edit sessions see a handful of rows per
// procedure; the cap only guards against a pathological client cycling
// a procedure through unbounded distinct constant tuples.
const maxContextsPerProc = 64

// ContextStore is a thread-safe core.ContextMemo: per-procedure
// propagation steps keyed by incoming lattice row. A session owns one
// store and keeps it sound across edits by invalidating every
// procedure in an edit's blast radius (exactly the procedures whose
// jump functions are rebuilt) and resetting wholesale on any full
// rebuild (which replaces the procedure identities the keys hang on).
type ContextStore struct {
	mu     sync.Mutex
	recs   map[*sem.Procedure]map[string]*core.ContextRecord
	hits   uint64
	misses uint64
	bytes  int64
}

// NewContextStore returns an empty store.
func NewContextStore() *ContextStore {
	return &ContextStore{recs: make(map[*sem.Procedure]map[string]*core.ContextRecord)}
}

// Lookup implements core.ContextMemo.
func (s *ContextStore) Lookup(p *sem.Procedure, key string) (*core.ContextRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[p][key]; ok {
		s.hits++
		return rec, true
	}
	s.misses++
	return nil, false
}

// Store implements core.ContextMemo. Records are immutable once
// stored; a procedure past its row cap silently drops new records.
func (s *ContextStore) Store(p *sem.Procedure, key string, rec *ContextRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.recs[p]
	if m == nil {
		m = make(map[string]*core.ContextRecord)
		s.recs[p] = m
	}
	if _, dup := m[key]; dup {
		return
	}
	if len(m) >= maxContextsPerProc {
		return
	}
	m[key] = rec
	s.bytes += recordBytes(key, rec)
}

// ContextRecord aliases the driver's record type so callers of this
// package need not import core for the store alone.
type ContextRecord = core.ContextRecord

// Invalidate drops every record of p (the procedure's jump functions
// changed, so its steps can no longer be replayed).
func (s *ContextStore) Invalidate(p *sem.Procedure) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, rec := range s.recs[p] {
		s.bytes -= recordBytes(key, rec)
	}
	delete(s.recs, p)
}

// Reset drops everything (full rebuild: all procedure identities are
// replaced).
func (s *ContextStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = make(map[*sem.Procedure]map[string]*core.ContextRecord)
	s.bytes = 0
}

// Hits returns the number of successful lookups so far.
func (s *ContextStore) Hits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses returns the number of failed lookups so far.
func (s *ContextStore) Misses() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Bytes estimates the store's retained size, for session byte budgets.
func (s *ContextStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func recordBytes(key string, rec *core.ContextRecord) int64 {
	return int64(len(key)) + int64(len(rec.Contribs))*48 + 96
}
