// Package memo implements incremental analysis: a content-addressed
// cache over the expensive, per-unit phases of the pipeline.
//
// The jump-function framework is deliberately factored into per-procedure
// pieces — a jump function is local to the procedure body it was built
// from, and only the propagation phase is global (paper §4.1). memo
// exploits exactly that factoring: source text is split at program-unit
// boundaries, each unit is content-addressed, and the per-unit artifacts
// (parsed unit, forward and return jump functions, substitution
// decisions) are memoized under keys that capture everything the
// artifact depends on. Re-analysis of an edited program recomputes only
// the changed units; the cheap global propagation phase always re-runs.
//
// The cache is sound by construction, not by hope: every key includes a
// configuration fingerprint, the COMMON layout fingerprint, and the
// transitive callee closure hash of the unit, and every reuse path
// falls back to a full recomputation when anything fails to line up.
// Cached and uncached results are byte-identical.
package memo

import "strings"

// chunk is one slice of a source file holding exactly one program unit
// (plus any comment/blank lines up to the next unit header).
type chunk struct {
	file      string // source file name
	startLine int    // 1-based line of the chunk's first line
	text      string // raw text, headers through pre-next-header lines
}

// Chunk is the exported form of chunk: one program unit's contiguous
// source slice. Concatenating a split's chunk texts in order
// reproduces the input exactly.
type Chunk struct {
	File      string
	StartLine int // 1-based line of the chunk's first line
	Text      string
}

// Split exposes unit splitting to the session subsystem, which applies
// per-unit deltas against exactly these boundaries. ok is false when
// the text has no recognizable unit header.
func Split(file, src string) ([]Chunk, bool) {
	cs, ok := splitUnits(file, src)
	if !ok {
		return nil, false
	}
	out := make([]Chunk, len(cs))
	for i, c := range cs {
		out[i] = Chunk{File: c.file, StartLine: c.startLine, Text: c.text}
	}
	return out, true
}

// splitUnits splits F77s source text at program-unit boundaries. A new
// unit begins at each non-comment line whose first token is PROGRAM,
// SUBROUTINE, or [type] FUNCTION — these are reserved keywords in F77s,
// so no statement inside a unit body can start with them. Comment and
// blank lines between units attach to the preceding chunk (the lexer
// discards them either way, so attribution cannot change the parse).
//
// ok is false when the text has no recognizable unit header; callers
// fall back to whole-file analysis. A chunk that fails to parse to
// exactly one clean unit is rejected later, in the world builder, so a
// mis-split can cost performance but never correctness.
func splitUnits(file, src string) (chunks []chunk, ok bool) {
	var starts []int // byte offsets of unit headers' lines
	for off := 0; off < len(src); {
		end := strings.IndexByte(src[off:], '\n')
		if end < 0 {
			end = len(src)
		} else {
			end += off + 1
		}
		if isUnitHeader(src[off:end]) {
			starts = append(starts, off)
		}
		off = end
	}
	if len(starts) == 0 {
		return nil, false
	}
	// Leading text before the first header (comments/blanks, or garbage
	// the parser will reject) joins the first chunk.
	starts[0] = 0
	lineOf := func(off int) int {
		return 1 + strings.Count(src[:off], "\n")
	}
	for i, s := range starts {
		e := len(src)
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		chunks = append(chunks, chunk{file: file, startLine: lineOf(s), text: src[s:e]})
	}
	return chunks, true
}

// isUnitHeader reports whether a raw source line opens a new program
// unit. It mirrors the lexer's comment rules (classic C/* comments in
// column 1, ! anywhere) so that a commented-out header never splits.
func isUnitHeader(line string) bool {
	// Classic comment introducer in column 1: C or * followed by
	// whitespace/EOL — with the lexer's "C = 0" / "C(I) = 1" assignment
	// exception, which cannot begin a unit header anyway.
	if len(line) > 0 {
		c := line[0]
		if c == '*' {
			return false
		}
		if c == 'C' || c == 'c' {
			if len(line) == 1 {
				return false
			}
			switch line[1] {
			case ' ', '\t', '\r', '\n':
				// Could still be "C = …", but that is not a header either.
				return false
			}
		}
	}
	rest, word := firstWord(line)
	switch word {
	case "PROGRAM", "SUBROUTINE", "FUNCTION":
		return true
	case "INTEGER", "REAL", "LOGICAL", "DOUBLE":
		// Typed function headers: "INTEGER FUNCTION F(…)". "DOUBLE" must
		// be followed by "PRECISION FUNCTION".
		if word == "DOUBLE" {
			var next string
			rest, next = firstWord(rest)
			if next != "PRECISION" {
				return false
			}
		}
		_, next := firstWord(rest)
		return next == "FUNCTION"
	}
	return false
}

// firstWord scans one identifier-like word (uppercased) off the front of
// a line, skipping leading blanks and an optional statement label; it
// returns the remainder after the word. A line whose first glyph is not
// a letter yields "".
func firstWord(line string) (rest, word string) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	start := i
	for i < len(line) && isWordByte(line[i]) {
		i++
	}
	if i == start {
		return line, ""
	}
	return line[i:], strings.ToUpper(line[start:i])
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
