package memo

import (
	"container/list"
	"sync"
)

// DefaultMaxBytes is the byte budget a zero Options selects.
const DefaultMaxBytes = 64 << 20

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the cache's estimated memory footprint; least
	// recently used entries are evicted past it. <= 0 selects
	// DefaultMaxBytes.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
// Hits and Misses count every memoized lookup at any granularity
// (worlds, whole-config jump functions and substitutions, and per-unit
// artifacts); Evictions counts LRU entries dropped to stay within the
// byte budget.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Cache is a content-addressed store for the incremental-analysis
// artifacts of package memo. It is safe for concurrent use; concurrent
// requests for the same source single-flight the expensive front-end
// build.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // *entry values; front = most recently used
	worlds   map[string]*entry
	chunks   map[string]*entry
	building map[string]*worldCall

	hits, misses, evictions uint64
}

type entry struct {
	key   string
	bytes int64
	world *world
	chunk *chunkEntry
	elem  *list.Element
}

// worldCall single-flights one world construction.
type worldCall struct {
	done chan struct{}
	w    *world // nil when the source is ineligible for caching
}

// New returns an empty cache with the given byte budget.
func New(o Options) *Cache {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: o.MaxBytes,
		lru:      list.New(),
		worlds:   make(map[string]*entry),
		chunks:   make(map[string]*entry),
		building: make(map[string]*worldCall),
	}
}

// StatsSnapshot returns current counters.
func (c *Cache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.lru.Len(), Bytes: c.bytes, MaxBytes: c.maxBytes,
	}
}

// touch moves an entry to the LRU front. Callers hold c.mu.
func (c *Cache) touch(e *entry) { c.lru.MoveToFront(e.elem) }

// insert registers a new entry and evicts past the byte budget.
// Callers hold c.mu.
func (c *Cache) insert(e *entry, into map[string]*entry) {
	e.elem = c.lru.PushFront(e)
	into[e.key] = e
	c.bytes += e.bytes
	c.evict(e)
}

// addBytes charges delta more bytes to a live entry (artifact growth).
// Callers hold c.mu.
func (c *Cache) addBytes(e *entry, delta int64) {
	e.bytes += delta
	c.bytes += delta
	c.evict(e)
}

// evict drops least-recently-used entries until the budget is met,
// never evicting keep (the entry being inserted or grown — evicting it
// would immediately orphan its bytes accounting).
func (c *Cache) evict(keep *entry) {
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		if e == keep {
			// Only the protected entry remains (it alone exceeds the
			// budget); keep it — a cache that cannot hold one program
			// would degrade to pure overhead.
			if el.Prev() == nil {
				return
			}
			// Protected entry is at the back but not alone: rotate it
			// out of eviction's way.
			c.lru.MoveToFront(el)
			continue
		}
		c.lru.Remove(el)
		c.bytes -= e.bytes
		c.evictions++
		if e.world != nil {
			e.world.evicted = true
			delete(c.worlds, e.key)
		}
		if e.chunk != nil {
			e.chunk.evicted = true
			delete(c.chunks, e.key)
		}
	}
}
