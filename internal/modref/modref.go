// Package modref computes flow-insensitive interprocedural side-effect
// summaries in the style of Cooper–Kennedy:
//
//	MOD(p)  — the formal parameters p may modify (directly or through
//	          calls it makes, via reference-parameter binding);
//	GMOD(p) — the COMMON globals p may modify;
//	REF(p)  — the formals p may reference;
//	GREF(p) — the globals p may reference.
//
// The paper found MOD information decisive: "in any program where
// constants were found, using MOD information exposed additional
// constants" (Table 3). Without it, every call site kills every
// reference actual and every global.
package modref

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/sem"
)

// Info holds the computed summaries.
type Info struct {
	Graph *callgraph.Graph

	mod  map[*sem.Procedure]map[int]bool
	gmod map[*sem.Procedure]map[*sem.GlobalVar]bool
	ref  map[*sem.Procedure]map[int]bool
	gref map[*sem.Procedure]map[*sem.GlobalVar]bool
}

// Mod reports whether procedure p may modify its formal at index i.
func (in *Info) Mod(p *sem.Procedure, i int) bool { return in.mod[p][i] }

// GMod reports whether p may modify global g.
func (in *Info) GMod(p *sem.Procedure, g *sem.GlobalVar) bool { return in.gmod[p][g] }

// Ref reports whether p may reference its formal at index i.
func (in *Info) Ref(p *sem.Procedure, i int) bool { return in.ref[p][i] }

// GRef reports whether p may reference global g.
func (in *Info) GRef(p *sem.Procedure, g *sem.GlobalVar) bool { return in.gref[p][g] }

// ModSet returns MOD(p) as a set of formal indices.
func (in *Info) ModSet(p *sem.Procedure) map[int]bool { return in.mod[p] }

// GModSet returns GMOD(p).
func (in *Info) GModSet(p *sem.Procedure) map[*sem.GlobalVar]bool { return in.gmod[p] }

// Kills adapts the summaries to the ssa.Options.Kills signature: at a
// call site, the killed formal positions are MOD(callee) and the killed
// globals are GMOD(callee).
func (in *Info) Kills(site *cfg.CallSite) (map[int]bool, map[*sem.GlobalVar]bool, bool) {
	callee := in.Graph.Nodes[site.Callee]
	if callee == nil {
		return nil, nil, true // unknown callee: worst case
	}
	return in.mod[callee.Proc], in.gmod[callee.Proc], false
}

// Compute runs the analysis to fixpoint over the call graph.
func Compute(cg *callgraph.Graph) *Info {
	in := &Info{
		Graph: cg,
		mod:   make(map[*sem.Procedure]map[int]bool),
		gmod:  make(map[*sem.Procedure]map[*sem.GlobalVar]bool),
		ref:   make(map[*sem.Procedure]map[int]bool),
		gref:  make(map[*sem.Procedure]map[*sem.GlobalVar]bool),
	}
	for _, n := range cg.Order {
		in.mod[n.Proc] = make(map[int]bool)
		in.gmod[n.Proc] = make(map[*sem.GlobalVar]bool)
		in.ref[n.Proc] = make(map[int]bool)
		in.gref[n.Proc] = make(map[*sem.GlobalVar]bool)
	}
	for _, n := range cg.Order {
		in.collectDirect(n)
	}
	// Close over call edges; bottom-up order converges fast, iterate to
	// a fixpoint to handle recursion.
	for changed := true; changed; {
		changed = false
		for _, n := range cg.BottomUp() {
			if in.closeNode(n) {
				changed = true
			}
		}
	}
	return in
}

// collectDirect records immediate effects within one procedure body.
func (in *Info) collectDirect(n *callgraph.Node) {
	p := n.Proc
	defSym := func(s *sem.Symbol) {
		if s == nil {
			return
		}
		switch s.Kind {
		case sem.SymFormal:
			in.mod[p][s.FormalIndex] = true
		case sem.SymCommon:
			in.gmod[p][s.Global] = true
		}
	}
	useSym := func(s *sem.Symbol) {
		if s == nil {
			return
		}
		switch s.Kind {
		case sem.SymFormal:
			in.ref[p][s.FormalIndex] = true
		case sem.SymCommon:
			in.gref[p][s.Global] = true
		}
	}
	var useExpr func(e ast.Expr)
	useExpr = func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			switch v := x.(type) {
			case *ast.Ident:
				useSym(p.Lookup(v.Name))
			case *ast.Apply:
				useSym(p.Lookup(v.Name)) // array read (call args walked below)
			}
			return true
		})
	}

	for _, blk := range n.CFG.Blocks {
		for _, instr := range blk.Instrs {
			switch instr.Kind {
			case cfg.InstrAssign:
				defSym(instr.Lhs)
				defSym(instr.LhsArray)
				useExpr(instr.Rhs)
				for _, s := range instr.Subs {
					useExpr(s)
				}
			case cfg.InstrRead:
				for _, t := range instr.Targets {
					defSym(t.Sym)
					for _, s := range t.Subs {
						useExpr(s)
					}
				}
			case cfg.InstrPrint:
				for _, a := range instr.Args {
					useExpr(a)
				}
			case cfg.InstrCall:
				// Argument expressions are references; binding effects
				// are handled in closeNode. A whole-array or
				// array-element actual is a REF of the array here.
				for _, a := range instr.Site.Args {
					useExpr(a)
				}
			}
		}
		if blk.Term.Kind == cfg.TermCond {
			useExpr(blk.Term.Cond)
		}
	}
}

// closeNode propagates callee effects to the caller across each call
// site in n, returning whether anything was added.
func (in *Info) closeNode(n *callgraph.Node) bool {
	p := n.Proc
	changed := false
	addMod := func(s *sem.Symbol) {
		switch s.Kind {
		case sem.SymFormal:
			if !in.mod[p][s.FormalIndex] {
				in.mod[p][s.FormalIndex] = true
				changed = true
			}
		case sem.SymCommon:
			if !in.gmod[p][s.Global] {
				in.gmod[p][s.Global] = true
				changed = true
			}
		}
	}
	addRef := func(s *sem.Symbol) {
		switch s.Kind {
		case sem.SymFormal:
			if !in.ref[p][s.FormalIndex] {
				in.ref[p][s.FormalIndex] = true
				changed = true
			}
		case sem.SymCommon:
			if !in.gref[p][s.Global] {
				in.gref[p][s.Global] = true
				changed = true
			}
		}
	}

	for _, site := range n.Out {
		calleeNode := in.Graph.Nodes[site.Callee]
		if calleeNode == nil {
			continue
		}
		q := calleeNode.Proc
		// Reference-parameter binding.
		for i, arg := range site.Args {
			var sym *sem.Symbol
			switch a := arg.(type) {
			case *ast.Ident:
				sym = p.Lookup(a.Name)
			case *ast.Apply:
				// Array element actual: effects hit the array.
				if s := p.Lookup(a.Name); s != nil && s.IsArray {
					sym = s
				}
			}
			if sym == nil {
				continue
			}
			if in.mod[q][i] {
				addMod(sym)
			}
			if in.ref[q][i] {
				addRef(sym)
			}
		}
		// Global effects propagate unconditionally.
		for g := range in.gmod[q] {
			if !in.gmod[p][g] {
				in.gmod[p][g] = true
				changed = true
			}
		}
		for g := range in.gref[q] {
			if !in.gref[p][g] {
				in.gref[p][g] = true
				changed = true
			}
		}
	}
	return changed
}

// String summarizes MOD/GMOD per procedure for debugging.
func (in *Info) String() string {
	var b strings.Builder
	for _, n := range in.Graph.Order {
		p := n.Proc
		var mods []string
		for i := range in.mod[p] {
			mods = append(mods, p.Formals[i].Name)
		}
		sort.Strings(mods)
		var gmods []string
		for g := range in.gmod[p] {
			gmods = append(gmods, g.Key())
		}
		sort.Strings(gmods)
		fmt.Fprintf(&b, "MOD(%s) = {%s} GMOD = {%s}\n", p.Name, strings.Join(mods, " "), strings.Join(gmods, " "))
	}
	return b.String()
}
