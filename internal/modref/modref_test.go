package modref

import (
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func compute(t *testing.T, src string) (*Info, *sem.Program) {
	t.Helper()
	var diags source.ErrorList
	f := parser.ParseSource("t.f", src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front-end errors:\n%s", diags.Error())
	}
	cg := callgraph.Build(prog)
	return Compute(cg), prog
}

func TestDirectMod(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER I, J
CALL S(I, J)
END
SUBROUTINE S(A, B)
INTEGER A, B
A = B + 1
END
`)
	s := prog.Procs["S"]
	if !info.Mod(s, 0) {
		t.Error("A (index 0) must be in MOD(S)")
	}
	if info.Mod(s, 1) {
		t.Error("B (index 1) must not be in MOD(S)")
	}
	if !info.Ref(s, 1) {
		t.Error("B must be in REF(S)")
	}
	if info.Ref(s, 0) {
		t.Error("A must not be in REF(S) (written only)")
	}
}

func TestTransitiveModThroughBinding(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER I
CALL OUTER(I)
END
SUBROUTINE OUTER(X)
INTEGER X
CALL INNER(X)
END
SUBROUTINE INNER(Y)
INTEGER Y
Y = 1
END
`)
	outer := prog.Procs["OUTER"]
	if !info.Mod(outer, 0) {
		t.Error("X must be in MOD(OUTER) via INNER's modification of Y")
	}
}

func TestGlobalMod(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
COMMON /C/ N
CALL DEEP
END
SUBROUTINE DEEP()
CALL SETTER
END
SUBROUTINE SETTER()
COMMON /C/ M
M = 5
END
`)
	g := prog.CommonBlocks["C"][0]
	if !info.GMod(prog.Procs["SETTER"], g) {
		t.Error("GMOD(SETTER) must contain the global")
	}
	if !info.GMod(prog.Procs["DEEP"], g) {
		t.Error("GMOD(DEEP) must contain the global transitively")
	}
	if !info.GMod(prog.Procs["MAIN"], g) {
		t.Error("GMOD(MAIN) must contain the global transitively")
	}
}

func TestGlobalRef(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
COMMON /C/ N
N = 1
CALL USER
END
SUBROUTINE USER()
COMMON /C/ M
PRINT *, M
END
`)
	g := prog.CommonBlocks["C"][0]
	if !info.GRef(prog.Procs["USER"], g) {
		t.Error("GREF(USER) must contain the global")
	}
	if !info.GRef(prog.Procs["MAIN"], g) {
		t.Error("GREF(MAIN) must inherit the reference")
	}
	if info.GMod(prog.Procs["USER"], g) {
		t.Error("USER does not modify the global")
	}
}

func TestArrayElementActualModsArray(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER A(10), B(10)
CALL S(A(3), B(1))
END
SUBROUTINE S(X, Y)
INTEGER X, Y
X = Y + 7
END
SUBROUTINE PASSER(C)
INTEGER C(10)
CALL S(C(2), C(3))
END
`)
	// PASSER passes elements of its array formal C: the MOD of S's X
	// must make C modified in PASSER.
	passer := prog.Procs["PASSER"]
	if !info.Mod(passer, 0) {
		t.Error("C must be in MOD(PASSER) via element binding")
	}
	if !info.Ref(passer, 0) {
		t.Error("C must be in REF(PASSER) via element binding")
	}
}

func TestArrayFormalElementMod(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER A(10)
CALL FILL(A, 10)
END
SUBROUTINE FILL(B, N)
INTEGER N, B(N)
INTEGER I
DO I = 1, N
  B(I) = 0
ENDDO
END
`)
	fill := prog.Procs["FILL"]
	if !info.Mod(fill, 0) {
		t.Error("array formal B must be in MOD(FILL)")
	}
	// N is read (loop bound) and also written by the DO variable? No: I
	// is the loop variable. N must be REF but not MOD.
	if info.Mod(fill, 1) {
		t.Error("N must not be in MOD(FILL)")
	}
	if !info.Ref(fill, 1) {
		t.Error("N must be in REF(FILL)")
	}
}

func TestReadTargetIsMod(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER I
CALL GETV(I)
END
SUBROUTINE GETV(X)
INTEGER X
READ *, X
END
`)
	if !info.Mod(prog.Procs["GETV"], 0) {
		t.Error("READ target formal must be in MOD")
	}
}

func TestRecursiveMod(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER I
CALL R(I, 3)
END
SUBROUTINE R(X, N)
INTEGER X, N
IF (N .GT. 0) THEN
  CALL R(X, N - 1)
ELSE
  X = 0
ENDIF
END
`)
	r := prog.Procs["R"]
	if !info.Mod(r, 0) {
		t.Error("X must be in MOD(R) (recursion)")
	}
	if info.Mod(r, 1) {
		t.Error("N must not be in MOD(R)")
	}
}

func TestKillsAdapter(t *testing.T) {
	info, prog := compute(t, `PROGRAM MAIN
INTEGER I, J
COMMON /C/ G
CALL S(I, J)
END
SUBROUTINE S(A, B)
INTEGER A, B
COMMON /C/ H
A = 1
H = 2
END
`)
	main := info.Graph.Nodes["MAIN"]
	site := main.Out[0]
	formals, globals, all := info.Kills(site)
	if all {
		t.Fatal("Kills with MOD info should not be worst-case")
	}
	if !formals[0] || formals[1] {
		t.Errorf("killed formals = %v", formals)
	}
	g := prog.CommonBlocks["C"][0]
	if !globals[g] {
		t.Error("global must be killed")
	}
}

func TestDoduclikeMutualRecursionTerminates(t *testing.T) {
	// Just make sure the fixpoint terminates on mutual recursion with
	// globals.
	info, _ := compute(t, `PROGRAM MAIN
CALL A
END
SUBROUTINE A()
COMMON /X/ P
P = P + 1
CALL B
END
SUBROUTINE B()
COMMON /X/ Q
IF (Q .GT. 0) CALL A
END
`)
	if info == nil {
		t.Fatal("nil info")
	}
	s := info.String()
	if !strings.Contains(s, "MOD(") {
		t.Errorf("String():\n%s", s)
	}
}
