// Benchmarks: one per paper exhibit (Figure 1, Tables 1–3), plus the
// cost measurements of §3.1.5 (jump function construction and
// propagation) and the solver ablation (worklist vs binding graph).
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/lattice"
	"repro/internal/lexer"
	"repro/internal/modref"
	"repro/internal/parser"
	"repro/internal/report"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/suite"
	"repro/internal/symbolic"
	ipcppkg "repro/ipcp"
)

// mustProgram parses and checks a source blob.
func mustProgram(b *testing.B, name, src string) *sem.Program {
	b.Helper()
	var diags source.ErrorList
	f := parser.ParseSource(name, src, &diags)
	prog := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		b.Fatalf("%s: %s", name, diags.Error())
	}
	return prog
}

func suiteProgram(b *testing.B, name string) *sem.Program {
	b.Helper()
	spec, ok := suite.ByName(name)
	if !ok {
		b.Fatalf("no suite program %s", name)
	}
	return mustProgram(b, name, suite.Source(spec))
}

func cfg(kind jump.Kind, useMod, rjf bool) core.Config {
	return core.Config{Jump: jump.Config{Kind: kind, UseMOD: useMod, UseReturnJFs: rjf}}
}

// ---------------------------------------------------------------------
// Figure 1: the lattice.

func BenchmarkFigure1Meet(b *testing.B) {
	vals := []lattice.Value{
		lattice.TopValue(), lattice.BottomValue(),
		lattice.ConstValue(1), lattice.ConstValue(2), lattice.ConstValue(-7),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := lattice.TopValue()
		for _, w := range vals {
			v = lattice.Meet(v, w)
		}
		if !v.IsBottom() {
			b.Fatal("meet chain should bottom out")
		}
	}
}

// ---------------------------------------------------------------------
// Table 1: suite synthesis and characterization.

func BenchmarkTable1Suite(b *testing.B) {
	specs := suite.Programs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			src := suite.Source(spec)
			ch := suite.Characterize(spec.Name, src)
			if ch.Procs == 0 {
				b.Fatal("empty characterization")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Table 2: the four jump functions (per representative program).

func BenchmarkTable2JumpFunctions(b *testing.B) {
	for _, name := range []string{"trfd", "matrix300", "ocean"} {
		prog := suiteProgram(b, name)
		for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
			b.Run(fmt.Sprintf("%s/%v", name, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a := core.AnalyzeProgram(prog, cfg(kind, true, true))
					if a.Vals == nil {
						b.Fatal("nil solution")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Table 3: technique comparison (per representative program).

func BenchmarkTable3Techniques(b *testing.B) {
	prog := suiteProgram(b, "matrix300")
	configs := map[string]core.Config{
		"poly-noMOD": cfg(jump.Polynomial, false, true),
		"poly-MOD":   cfg(jump.Polynomial, true, true),
		"complete": func() core.Config {
			c := cfg(jump.Polynomial, true, true)
			c.Complete = true
			return c
		}(),
	}
	for name, c := range configs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.AnalyzeProgram(prog, c).Substitute()
			}
		})
	}
	b.Run("intraprocedural", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.IntraproceduralCount(prog)
		}
	})
}

// ---------------------------------------------------------------------
// §3.1.5: jump function construction cost by kind.

func BenchmarkJumpFunctionConstruction(b *testing.B) {
	prog := suiteProgram(b, "ocean")
	cg := callgraph.Build(prog)
	mod := modref.Compute(cg)
	for _, kind := range []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb := symbolic.NewBuilder()
				fns, err := jump.Build(nil, cg, mod, sb, jump.Config{Kind: kind, UseMOD: true, UseReturnJFs: true}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(fns.Procs) == 0 {
					b.Fatal("no jump functions")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// §3.1.5 / 1986 §4: propagation cost, worklist vs binding graph, over a
// size sweep of generated programs.

// BenchmarkPropagationSolvers isolates the propagation phase: the jump
// functions are built once per kind, then each solver re-runs over them
// via Analysis.RunSolver. jf_evals_per_op is the per-iteration
// jump-function evaluation count — the paper's cost unit — so the
// binding graph's re-evaluate-only-on-support-lowering discipline is
// visible next to the worklist's blanket re-evaluation.
func BenchmarkPropagationSolvers(b *testing.B) {
	src := gen.Program(gen.Config{Seed: 11, NumProcs: 32, StmtsPerProc: 12})
	prog := mustProgram(b, "gen32", src)
	for _, kind := range []jump.Kind{jump.Literal, jump.PassThrough, jump.Polynomial} {
		a := core.AnalyzeProgram(prog, cfg(kind, true, true))
		// The two solvers must agree before their costs are comparable.
		wl, _, err := a.RunSolver(core.SolverWorklist)
		if err != nil {
			b.Fatal(err)
		}
		bg, _, err := a.RunSolver(core.SolverBinding)
		if err != nil {
			b.Fatal(err)
		}
		if !wl.Equal(bg) {
			b.Fatalf("%v: worklist and binding-graph solutions differ", kind)
		}
		for _, solver := range []core.SolverKind{core.SolverWorklist, core.SolverBinding} {
			b.Run(fmt.Sprintf("%v/%v", kind, solver), func(b *testing.B) {
				b.ReportAllocs()
				total := 0
				for i := 0; i < b.N; i++ {
					_, evals, err := a.RunSolver(solver)
					if err != nil {
						b.Fatal(err)
					}
					total += evals
				}
				b.ReportMetric(float64(total)/float64(b.N), "jf_evals_per_op")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Front-end throughput (context for the analysis costs).

func BenchmarkFrontEnd(b *testing.B) {
	spec, _ := suite.ByName("spec77")
	src := suite.Source(spec)
	b.Run("lex", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			var diags source.ErrorList
			toks := lexer.Tokenize(source.NewFile("s.f", src), &diags)
			if len(toks) == 0 {
				b.Fatal("no tokens")
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			var diags source.ErrorList
			f := parser.ParseSource("s.f", src, &diags)
			if len(f.Units) == 0 {
				b.Fatal("no units")
			}
		}
	})
	b.Run("sem", func(b *testing.B) {
		var diags source.ErrorList
		f := parser.ParseSource("s.f", src, &diags)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var d2 source.ErrorList
			sem.Analyze(f, &d2)
		}
	})
	b.Run("ssa", func(b *testing.B) {
		prog := mustProgram(b, "s.f", src)
		cg := callgraph.Build(prog)
		mod := modref.Compute(cg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, n := range cg.Order {
				dt := dom.Compute(n.CFG)
				ssa.Build(n.CFG, dt, ssa.Options{Kills: mod.Kills, Globals: prog.Globals()})
			}
		}
	})
}

// ---------------------------------------------------------------------
// Parallel pipeline: the whole public analysis and the exhibit sweep at
// explicit worker counts. Output is bit-identical at every setting
// (ipcp.TestParallelMatchesSerial); these measure what the workers buy.

func BenchmarkParallelAnalyze(b *testing.B) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		b.Fatal("no suite program spec77")
	}
	src := suite.Source(spec)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := ipcppkg.Config{Kind: ipcppkg.Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: workers}
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := ipcppkg.Analyze("spec77.f", src, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := report.ComputeTable2With(workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Reference interpreter throughput (the evaluation oracle).

func BenchmarkInterpreter(b *testing.B) {
	prog := mustProgram(b, "loop.f", `PROGRAM MAIN
INTEGER I, J, S
S = 0
DO I = 1, 100
  DO J = 1, 100
    S = S + MOD(I*J, 7)
  ENDDO
ENDDO
PRINT *, S
END
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps == 0 {
			b.Fatal("no steps")
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: gated-SSA jump functions vs iterated complete propagation —
// the paper's §4.2 suggestion that GSA subsumes the iteration.

func BenchmarkGatedVsComplete(b *testing.B) {
	prog := suiteProgram(b, "ocean")
	b.Run("complete-iterated", func(b *testing.B) {
		c := cfg(jump.Polynomial, true, true)
		c.Complete = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.AnalyzeProgram(prog, c)
		}
	})
	b.Run("gated-single-round", func(b *testing.B) {
		c := cfg(jump.Polynomial, true, true)
		c.Jump.Gated = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.AnalyzeProgram(prog, c)
		}
	})
}

// ---------------------------------------------------------------------
// Ablation: the paper-faithful constants-only return jump function
// substitution vs the FullSubstitution extension.

func BenchmarkReturnJFSubstitutionModes(b *testing.B) {
	src := gen.Program(gen.Config{Seed: 5, NumProcs: 20, StmtsPerProc: 14})
	prog := mustProgram(b, "gen.f", src)
	for _, full := range []bool{false, true} {
		name := "paper-constants-only"
		if full {
			name = "full-substitution"
		}
		b.Run(name, func(b *testing.B) {
			c := cfg(jump.Polynomial, true, true)
			c.Jump.FullSubstitution = full
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.AnalyzeProgram(prog, c)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Extension costs: procedure cloning and substitution counting.

func BenchmarkCloning(b *testing.B) {
	src := `PROGRAM MAIN
CALL SOLVE(8)
CALL SOLVE(512)
CALL SOLVE(64)
END
SUBROUTINE SOLVE(N)
INTEGER N, I, S
S = 0
DO I = 1, N
  S = S + I
ENDDO
PRINT *, S
END
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, info, err := ipcppkg.AnalyzeWithCloning("solve.f", src, ipcppkg.DefaultConfig(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if info.Created == 0 || res.SubstitutionCount() == 0 {
			b.Fatal("cloning had no effect")
		}
	}
}

func BenchmarkSubstitutionCounting(b *testing.B) {
	prog := suiteProgram(b, "snasa7")
	a := core.AnalyzeProgram(prog, cfg(jump.PassThrough, true, true))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a.Substitute().Total == 0 {
			b.Fatal("no substitutions")
		}
	}
}
