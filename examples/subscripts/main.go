// Linearizing array subscripts for dependence analysis.
//
// Shen, Li & Yew found that about half of the "nonlinear" array
// subscripts in FORTRAN libraries become linear once interprocedural
// constants are known — and most dependence tests give up on nonlinear
// subscripts entirely. This example reproduces that measurement in
// miniature: it classifies every array subscript as linear or nonlinear
// (in the loop induction variables), before and after interprocedural
// constant propagation.
//
//	go run ./examples/subscripts
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/ipcp"
)

// The classic pattern: a linearized 2-D array indexed A(I*LDA + J)
// where LDA arrives through two call boundaries. Until LDA is known the
// subscript is a product of two variables — nonlinear.
const program = `PROGRAM MAIN
COMMON /SHAPE/ LDA
LDA = 100
CALL PASS1
END

SUBROUTINE PASS1()
INTEGER LDA
COMMON /SHAPE/ LDA
CALL KERNEL(LDA)
END

SUBROUTINE KERNEL(N)
INTEGER N, I, J, K
REAL A(10000), B(10000)
READ *, K
DO I = 1, 10
  DO J = 1, 10
    A(I*N + J) = B(J*N + I) + 1.0
    B(I*K + J) = A(I*N + J)
  ENDDO
ENDDO
END
`

func main() {
	fmt.Println("== subscript linearity before propagation ==")
	report(program)

	res, err := ipcp.Analyze("kernel.f", program, ipcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== subscript linearity after interprocedural constant propagation ==")
	report(res.TransformedSource())

	fmt.Println("\nLDA reached KERNEL through two call-graph edges (a pass-through")
	fmt.Println("jump function at PASS1's call site), so I*N + J became I*100 + J —")
	fmt.Println("linear in the induction variables. K is read at run time, so")
	fmt.Println("I*K + J stays nonlinear: the dependence test must stay conservative.")
}

// report parses the program and classifies each array subscript.
func report(src string) {
	var diags source.ErrorList
	f := parser.ParseSource("x.f", src, &diags)
	if diags.HasErrors() {
		log.Fatal(diags.Error())
	}
	linear, nonlinear := 0, 0
	for _, unit := range f.Units {
		// Induction variables: every DO variable in the unit.
		ivs := map[string]bool{}
		ast.WalkStmts(unit.Body, func(s ast.Stmt) bool {
			if d, ok := s.(*ast.DoStmt); ok {
				ivs[d.Var] = true
			}
			return true
		})
		ast.WalkStmts(unit.Body, func(s ast.Stmt) bool {
			for _, e := range ast.ExprsOf(s) {
				ast.WalkExpr(e, func(x ast.Expr) bool {
					ap, ok := x.(*ast.Apply)
					if !ok || len(ap.Args) == 0 {
						return true
					}
					for _, sub := range ap.Args {
						if !isArraySubscriptCandidate(sub) {
							continue
						}
						kind := "linear"
						if !isLinear(sub, ivs) {
							kind = "NONLINEAR"
							nonlinear++
						} else {
							linear++
						}
						fmt.Printf("  %-8s %s(%s)  [%s]\n", unit.Name, ap.Name, ast.ExprString(sub), kind)
					}
					return true
				})
			}
			return true
		})
	}
	fmt.Printf("  => %d linear, %d nonlinear\n", linear, nonlinear)
}

// isArraySubscriptCandidate skips trivial subscripts to keep the report
// readable.
func isArraySubscriptCandidate(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IntLit, *ast.Ident:
		return false
	}
	return true
}

// isLinear reports whether the subscript is a linear form over the
// induction variables: no product/quotient/power of two expressions
// that both involve induction variables or unknowns.
func isLinear(e ast.Expr, ivs map[string]bool) bool {
	switch x := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Ident:
		return true
	case *ast.Unary:
		return isLinear(x.X, ivs)
	case *ast.Binary:
		switch x.Op {
		case ast.OpAdd, ast.OpSub:
			return isLinear(x.X, ivs) && isLinear(x.Y, ivs)
		case ast.OpMul:
			// A product is linear only if one side is a compile-time
			// constant.
			_, lc := constExpr(x.X)
			_, rc := constExpr(x.Y)
			return (lc && isLinear(x.Y, ivs)) || (rc && isLinear(x.X, ivs))
		default:
			return false
		}
	}
	return false
}

func constExpr(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Unary:
		if x.Op == ast.OpNeg {
			if v, ok := constExpr(x.X); ok {
				return -v, true
			}
		}
	case *ast.Binary:
		l, okL := constExpr(x.X)
		r, okR := constExpr(x.Y)
		if okL && okR {
			switch x.Op {
			case ast.OpAdd:
				return l + r, true
			case ast.OpSub:
				return l - r, true
			case ast.OpMul:
				return l * r, true
			}
		}
	}
	return 0, false
}
