// Quickstart: analyze a small F77s program, print its CONSTANTS sets,
// and show the transformed source with the constants substituted.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ipcp"
)

const program = `PROGRAM MAIN
INTEGER N
COMMON /CFG/ NX
NX = 64
CALL SETUP(N)
CALL WORK(N)
END

SUBROUTINE SETUP(K)
INTEGER K
K = 100
END

SUBROUTINE WORK(M)
INTEGER M, NX, I, S
COMMON /CFG/ NX
S = 0
DO I = 1, M
  S = S + NX
ENDDO
PRINT *, S
END
`

func main() {
	res, err := ipcp.Analyze("quickstart.f", program, ipcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CONSTANTS sets (pass-through jump functions + MOD + return JFs) ==")
	for _, proc := range res.Procedures() {
		ks := res.ConstantsOf(proc)
		if len(ks) == 0 {
			continue
		}
		fmt.Printf("  CONSTANTS(%s) =", proc)
		for _, k := range ks {
			fmt.Printf(" (%s, %d)", k.Name, k.Value)
		}
		fmt.Println()
	}

	fmt.Printf("\n%d constant uses are substitutable.\n", res.SubstitutionCount())

	fmt.Println("\n== transformed source ==")
	fmt.Println(res.TransformedSource())

	// The interpreter shows behaviour is unchanged.
	before, err := ipcp.Run("before.f", program, nil)
	if err != nil {
		log.Fatal(err)
	}
	after, err := ipcp.Run("after.f", res.TransformedSource(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output before: %safter substitution: %s", before, after)
	if before == after {
		fmt.Println("(identical, as it must be)")
	}
}
