// Procedure cloning guided by interprocedural constants.
//
// When a procedure is called with *different* constants at different
// sites, the lattice meet loses them (c₁ ∧ c₂ = ⊥). Metzger & Stroud
// (and Cooper, Hall & Kennedy) showed that cloning the procedure per
// constant context recovers them: each clone's CONSTANTS set holds its
// own site's values. This example performs exactly that experiment:
//
//  1. analyze: the shared callee has no entry constants;
//
//  2. clone the callee per call site (a textual transformation);
//
//  3. re-analyze: every clone now has constants, and the substitution
//     count rises.
//
//     go run ./examples/cloning
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/ipcp"
)

const program = `PROGRAM MAIN
CALL SOLVE(8)
CALL SOLVE(512)
END

SUBROUTINE SOLVE(N)
INTEGER N, I, S
S = 0
DO I = 1, N
  S = S + I*N
ENDDO
IF (N .LT. 16) THEN
  PRINT *, 'small solve', S
ELSE
  PRINT *, 'large solve', S
ENDIF
END
`

func main() {
	fmt.Println("== before cloning ==")
	res, err := ipcp.Analyze("solve.f", program, ipcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ks := res.ConstantsOf("SOLVE")
	fmt.Printf("  CONSTANTS(SOLVE) = %v  (8 ∧ 512 = ⊥: the meet destroys both)\n", ks)
	fmt.Printf("  substitutable uses: %d\n", res.SubstitutionCount())

	// Clone SOLVE per call site. A production implementation would work
	// on the call graph; for the demonstration a textual clone is
	// enough.
	cloned := strings.Replace(program, "CALL SOLVE(8)", "CALL SOLVE1(8)", 1)
	cloned = strings.Replace(cloned, "CALL SOLVE(512)", "CALL SOLVE2(512)", 1)
	body := program[strings.Index(program, "SUBROUTINE SOLVE"):]
	clone1 := strings.Replace(body, "SUBROUTINE SOLVE(N)", "SUBROUTINE SOLVE1(N)", 1)
	clone2 := strings.Replace(body, "SUBROUTINE SOLVE(N)", "SUBROUTINE SOLVE2(N)", 1)
	cloned = cloned[:strings.Index(cloned, "SUBROUTINE SOLVE")] + clone1 + "\n" + clone2

	fmt.Println("\n== after cloning (SOLVE → SOLVE1, SOLVE2) ==")
	res2, err := ipcp.Analyze("solve-cloned.f", cloned, ipcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, proc := range []string{"SOLVE1", "SOLVE2"} {
		fmt.Printf("  CONSTANTS(%s) = %v\n", proc, res2.ConstantsOf(proc))
	}
	fmt.Printf("  substitutable uses: %d (was %d)\n", res2.SubstitutionCount(), res.SubstitutionCount())

	// With complete propagation the constant branch predicates fold,
	// specializing each clone's control flow.
	cfg := ipcp.DefaultConfig()
	cfg.Kind = ipcp.Polynomial
	cfg.Complete = true
	res3, err := ipcp.Analyze("solve-cloned.f", cloned, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith complete propagation the clones' IF (N .LT. 16) tests fold: %d uses\n",
		res3.SubstitutionCount())

	// Behaviour is unchanged throughout.
	before, _ := ipcp.Run("a.f", program, nil)
	after, _ := ipcp.Run("b.f", cloned, nil)
	if before != after {
		log.Fatalf("cloning changed behaviour!\nbefore:\n%s\nafter:\n%s", before, after)
	}
	fmt.Println("cloned program output verified identical to the original.")

	// The library automates all of the above: AnalyzeWithCloning
	// partitions call sites by the constants they deliver, clones, and
	// re-analyzes until nothing more pays off.
	fmt.Println("\n== automated: ipcp.AnalyzeWithCloning ==")
	auto, info, err := ipcp.AnalyzeWithCloning("solve.f", program, ipcp.DefaultConfig(), 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range info.Cloned {
		fmt.Printf("  cloned: %s\n", c)
	}
	fmt.Printf("  substitutable uses: %d (rounds: %d, clones: %d)\n",
		auto.SubstitutionCount(), info.Rounds, info.Created)
}
