// Loop bounds for automatic parallelization.
//
// The paper's introduction motivates interprocedural constants with
// parallelizing compilers: "interprocedural constants are often used as
// loop bounds. … knowing their values allows the compiler to make
// informed decisions about the profitability of parallel execution."
// (Eigenmann & Blume.)
//
// This example runs the analyzer over a solver whose mesh dimensions
// are configured in the main program, then reports, for every DO loop
// in the program, whether its trip count became a compile-time constant
// — and what a parallelizer would decide.
//
//	go run ./examples/loopbounds
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/ipcp"
)

const program = `PROGRAM MAIN
INTEGER NX, NY
COMMON /MESH/ NXG, NYG
NX = 512
NY = 8
NXG = NX
NYG = NY
CALL RELAX(NX, NY)
CALL EDGE(NY)
END

SUBROUTINE RELAX(N, M)
INTEGER N, M, I, J, NXG, NYG
REAL U(100000)
COMMON /MESH/ NXG, NYG
DO I = 2, N - 1
  DO J = 2, M - 1
    U(I*M + J) = 0.25 * (U((I-1)*M + J) + U((I+1)*M + J))
  ENDDO
ENDDO
END

SUBROUTINE EDGE(M)
INTEGER M, J, K
REAL B(1000)
READ *, K
DO J = 1, M
  B(J) = B(J) + K
ENDDO
DO J = 1, K
  B(J) = B(J) * 2.0
ENDDO
END
`

func main() {
	res, err := ipcp.Analyze("mesh.f", program, ipcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Re-parse the transformed source: loop bounds that the analyzer
	// proved constant are now literals.
	transformed := res.TransformedSource()
	var diags source.ErrorList
	f := parser.ParseSource("mesh-opt.f", transformed, &diags)
	if diags.HasErrors() {
		log.Fatal(diags.Error())
	}

	fmt.Println("== parallelizability report ==")
	for _, unit := range f.Units {
		ast.WalkStmts(unit.Body, func(s ast.Stmt) bool {
			loop, ok := s.(*ast.DoStmt)
			if !ok {
				return true
			}
			from, okF := constOf(loop.From)
			to, okT := constOf(loop.To)
			fmt.Printf("  %s: DO %s = %s, %s",
				unit.Name, loop.Var, ast.ExprString(loop.From), ast.ExprString(loop.To))
			if okF && okT {
				trips := to - from + 1
				if trips < 0 {
					trips = 0
				}
				verdict := "parallelize (enough iterations to amortize fork/join)"
				if trips < 16 {
					verdict = "keep sequential (too few iterations)"
				}
				fmt.Printf("  → trip count %d: %s\n", trips, verdict)
			} else {
				fmt.Printf("  → trip count unknown at compile time: emit runtime test\n")
			}
			return true
		})
	}

	fmt.Println("\nThe RELAX bounds come from constants that crossed two call")
	fmt.Println("boundaries (MAIN → RELAX); the EDGE bound crossed one; EDGE's")
	fmt.Println("body also reads K at run time, which stays unknown — exactly")
	fmt.Println("the conservative behaviour the framework guarantees.")
}

func constOf(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Binary:
		l, okL := constOf(x.X)
		r, okR := constOf(x.Y)
		if okL && okR {
			switch x.Op {
			case ast.OpAdd:
				return l + r, true
			case ast.OpSub:
				return l - r, true
			case ast.OpMul:
				return l * r, true
			}
		}
	}
	return 0, false
}
