package ipcp

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzAnalyze: the full pipeline must never report an internal error
// (i.e. an escaped panic) on arbitrary input — malformed programs are
// rejected with diagnostics, accepted ones analyze to completion.
// Seeded from the core analysis corpus (internal/core/testdata/*.f).
//
// Run the corpus with `go test`; explore with `go test -fuzz FuzzAnalyze`.
func FuzzAnalyze(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "internal", "core", "testdata", "*.f"))
	if len(seeds) == 0 {
		f.Fatal("no seed corpus under ../internal/core/testdata")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Analyze("fuzz.f", src, DefaultConfig())
		if err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("internal error (escaped panic) in %s: %v\n%s", ie.Phase, ie.Value, ie.Stack)
			}
			return // ordinary front-end rejection
		}
		// Exercise the Result surface over whatever was accepted.
		_ = res.SubstitutionCount()
		_ = res.Constants()
		_ = res.TransformedSource()
	})
}
