// Robustness surface of the public API: structured internal errors,
// resource budgets, and graceful-degradation reporting. See
// docs/robustness.md for the full contract.
package ipcp

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/guard"
)

// Phase names the pipeline stage where an internal fault occurred.
type Phase string

const (
	PhaseLex   Phase = "lex"
	PhaseParse Phase = "parse"
	PhaseSem   Phase = "sem"
	PhaseJump  Phase = "jump"
	PhaseSolve Phase = "solve"
	PhaseSubst Phase = "subst"
)

// InternalError reports a bug in the analyzer itself: an internal panic
// that Analyze intercepted and converted into an error. User-facing
// entry points never propagate raw panics; they return *InternalError
// instead, carrying enough context (phase, program unit, stack) to file
// a useful report.
type InternalError struct {
	// Phase is the pipeline stage that failed.
	Phase Phase
	// Unit is the program unit (procedure name) being processed when
	// the fault hit, when known; empty otherwise.
	Unit string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Unit != "" {
		return fmt.Sprintf("ipcp: internal error in %s (%s): %v", e.Phase, e.Unit, e.Value)
	}
	return fmt.Sprintf("ipcp: internal error in %s: %v", e.Phase, e.Value)
}

// Budget bounds the resources an analysis may consume. The zero value
// means unlimited on every axis; wall-clock limits come from the
// context passed to AnalyzeContext. When a budget axis is exhausted the
// analysis does not fail — it degrades along a sound fallback chain
// (see Result.Degradations) and still returns a correct, if less
// precise, result.
type Budget struct {
	// MaxSolverSteps caps jump-function evaluations during
	// interprocedural propagation.
	MaxSolverSteps int
	// MaxRounds caps complete-propagation rounds (Config.Complete).
	MaxRounds int
	// MaxJFExprSize caps the node count of any single symbolic
	// jump-function expression; larger expressions are truncated to an
	// opaque (non-constant) value.
	MaxJFExprSize int
}

func (b Budget) internal() guard.Budget {
	return guard.Budget{
		MaxSolverSteps: b.MaxSolverSteps,
		MaxRounds:      b.MaxRounds,
		MaxExprSize:    b.MaxJFExprSize,
	}
}

// Warning describes one graceful-degradation step the analyzer took to
// stay within its Budget (or context deadline).
type Warning struct {
	// Axis is the budget axis that was exhausted: "deadline",
	// "solver-steps", "rounds", or "expr-size".
	Axis string
	// From is the configuration or behavior that exhausted the budget.
	From string
	// To is the sound configuration fallen back to; "no-constants"
	// means the trivial all-⊥ solution (every fallback was spent).
	To string
	// Detail is the underlying budget error's message.
	Detail string
}

func (w Warning) String() string {
	return fmt.Sprintf("degraded [%s]: %s → %s (%s)", w.Axis, w.From, w.To, w.Detail)
}

// BudgetError reports that a FailFast analysis ran out of a resource
// budget (or its context was cancelled) before completing. It is
// returned only when Config.FailFast is set; without it the analyzer
// degrades instead and the same information arrives as
// Result.Degradations. It is distinct from *InternalError: a
// BudgetError is the environment's fault (deadline, budget), not a bug
// in the analyzer.
type BudgetError struct {
	// Axis is the exhausted budget axis: "deadline", "solver-steps",
	// "rounds", "jf-expr-size" — or "fault" for injected test faults.
	Axis string
	// Site is the pipeline site that noticed (e.g. "solve", "jump").
	Site string
	// Detail is the underlying error's message.
	Detail string
	cause  error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("ipcp: budget exhausted [%s] at %s: %s", e.Axis, e.Site, e.Detail)
}

// Unwrap exposes the underlying guard error so errors.Is/As reach the
// context error (context.Canceled, context.DeadlineExceeded) beneath.
func (e *BudgetError) Unwrap() error { return e.cause }

// budgetError wraps a FailFast attempt failure into a *BudgetError.
func budgetError(err error) error {
	var ex *guard.Exhausted
	if errors.As(err, &ex) {
		return &BudgetError{Axis: string(ex.Axis), Site: ex.Site, Detail: err.Error(), cause: err}
	}
	return &BudgetError{Axis: "fault", Detail: err.Error(), cause: err}
}

// recoverInternal converts a panic escaping the analysis pipeline into
// an *InternalError assigned to *err. Panics already attributed by the
// pipeline's recovery sites arrive as *guard.PanicError and keep their
// phase, unit, and original stack; anything else is labelled with the
// catch-all phase "analyze" and the stack captured here.
func recoverInternal(err *error) {
	r := recover()
	if r == nil {
		return
	}
	ie := &InternalError{Phase: "analyze", Value: r, Stack: debug.Stack()}
	if pe, ok := r.(*guard.PanicError); ok {
		ie.Phase = Phase(pe.Site)
		ie.Unit = pe.Unit
		ie.Value = pe.Value
		ie.Stack = pe.Stack
	}
	*err = ie
}
