package ipcp

import (
	"repro/internal/memo"
)

// Cache memoizes analysis work across Analyze calls. The analyzer
// splits each source at program-unit boundaries, content-addresses
// every unit, and reuses the per-unit artifacts (parsed units, forward
// and return jump functions, substitution decisions) whose inputs are
// unchanged; only the cheap global propagation phase always re-runs.
// Re-analyzing a program after editing one unit therefore costs roughly
// one unit's analysis, not the whole program's.
//
// Results are byte-identical with and without a cache, for every
// configuration. A Cache is safe for concurrent use by any number of
// analyses and bounds its memory with LRU eviction.
type Cache struct {
	c *memo.Cache
}

// CacheOptions configures NewCache.
type CacheOptions struct {
	// MaxBytes bounds the cache's estimated memory footprint; least
	// recently used entries are evicted past it. <= 0 selects a 64 MiB
	// default.
	MaxBytes int64
}

// CacheStats is a point-in-time snapshot of a Cache's counters. Hits
// and Misses count memoized lookups at every granularity (front-end
// builds, whole-configuration phase results, per-unit artifacts);
// Evictions counts entries dropped to stay within MaxBytes.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// NewCache returns an empty analysis cache.
func NewCache(o CacheOptions) *Cache {
	return &Cache{c: memo.New(memo.Options{MaxBytes: o.MaxBytes})}
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	s := c.c.StatsSnapshot()
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Entries: s.Entries, Bytes: s.Bytes, MaxBytes: s.MaxBytes,
	}
}
