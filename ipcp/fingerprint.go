package ipcp

import (
	"repro/internal/memo"
)

// Fingerprint returns the analysis request's content-addressed routing
// key: a stable hex digest over the exact source text and the
// configuration axes that determine which memoized artifacts (see
// Cache) the analysis can reuse. Two requests with equal fingerprints
// analyze the same program at memo-equivalent configurations, so a
// multi-node deployment that routes by fingerprint (the ipcp-coord
// coordinator does, with rendezvous hashing) lands warm cache entries
// on the right backend.
//
// Axes that never change the analysis artifacts hash identically:
// Parallelism, Solver, FailFast, the Cache handle, and the
// MaxSolverSteps/MaxRounds budgets (results are byte-identical across
// all of them, per this package's standing guarantees). Everything
// else — source text, filename, Kind, UseMOD, UseReturnJFs,
// FullSubstitution, Complete, Gated, Domain, and the MaxJFExprSize
// budget — contributes to the key. This is the exhaustive
// memo-relevance partition of Config: a field is in exactly one of the
// two lists above.
func Fingerprint(filename, src string, cfg Config) string {
	return FingerprintFiles([]SourceFile{{Name: filename, Src: src}}, cfg)
}

// FingerprintFiles is Fingerprint over a multi-file program (see
// AnalyzeFiles); file order is significant, matching analysis
// semantics.
func FingerprintFiles(files []SourceFile, cfg Config) string {
	mf := make([]memo.File, len(files))
	for i, f := range files {
		mf[i] = memo.File{Name: f.Name, Src: f.Src}
	}
	return memo.ProgramFingerprint(mf, cfg.internal())
}
