package ipcp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

// robustSrc exercises every pipeline phase: a call chain for jump
// functions and the solver, plus substitutable constant uses.
const robustSrc = `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL WORK(K, 7)
END
SUBROUTINE WORK(N, M)
INTEGER N, M
PRINT *, N + M
END
`

// TestPhasePanicsBecomeInternalErrors is the acceptance check for the
// panic-recovery tentpole: a panic injected into any phase must come
// back from Analyze as *InternalError naming that phase — never as a
// raw panic, never as success.
func TestPhasePanicsBecomeInternalErrors(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	for _, phase := range []string{"lex", "parse", "sem", "jump", "solve", "subst"} {
		t.Run(phase, func(t *testing.T) {
			remove := guard.Set(phase, func() error {
				panic("injected fault in " + phase)
			})
			defer remove()

			res, err := Analyze("robust.f", robustSrc, DefaultConfig())
			if err == nil {
				t.Fatalf("Analyze succeeded (res=%v) despite injected %s panic", res, phase)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("error is %T (%v), want *InternalError", err, err)
			}
			if string(ie.Phase) != phase {
				t.Errorf("Phase = %q, want %q", ie.Phase, phase)
			}
			if len(ie.Stack) == 0 {
				t.Error("InternalError carries no stack")
			}
			if strings.Contains(ie.Error(), "\n") {
				t.Errorf("Error() is not one line: %q", ie.Error())
			}
		})
	}
}

// TestPhasePanicCarriesUnit checks per-procedure attribution for the
// phases that walk procedures one at a time.
func TestPhasePanicCarriesUnit(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("subst", func() error {
		return errors.New("injected subst fault")
	})
	defer remove()

	_, err := Analyze("robust.f", robustSrc, DefaultConfig())
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error is %T (%v), want *InternalError", err, err)
	}
	if ie.Phase != PhaseSubst {
		t.Errorf("Phase = %q, want subst", ie.Phase)
	}
}

// TestRunRecoversPanics: the interpreter entry point shares the
// no-raw-panics contract.
func TestRunRecoversPanics(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("lex", func() error { return errors.New("boom") })
	defer remove()

	_, err := Run("robust.f", robustSrc, nil)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Run error is %T (%v), want *InternalError", err, err)
	}
	if ie.Phase != PhaseLex {
		t.Errorf("Phase = %q, want lex", ie.Phase)
	}
}

// TestInjectedExhaustionDegradesSoundly is the acceptance check for
// graceful degradation: budget exhaustion injected into the solver must
// yield a successful, sound result whose Warnings name the exhausted
// axis — with the fault armed for every attempt, the chain ends at the
// trivial no-constants solution.
func TestInjectedExhaustionDegradesSoundly(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	remove := guard.Set("solve", func() error {
		return &guard.Exhausted{Axis: guard.AxisSolverSteps, Limit: 1, Site: "solve"}
	})
	defer remove()

	res, err := Analyze("robust.f", robustSrc, DefaultConfig())
	if err != nil {
		t.Fatalf("Analyze: %v (budget exhaustion must degrade, not fail)", err)
	}
	if !res.Degraded() || len(res.Warnings) == 0 {
		t.Fatalf("no degradation reported: Degradations=%v Warnings=%v", res.Degradations, res.Warnings)
	}
	for _, d := range res.Degradations {
		if d.Axis != string(guard.AxisSolverSteps) {
			t.Errorf("degradation axis = %q, want %q", d.Axis, guard.AxisSolverSteps)
		}
	}
	last := res.Degradations[len(res.Degradations)-1]
	if last.To != "no-constants" {
		t.Errorf("final fallback = %q, want no-constants (fault armed for every attempt)", last.To)
	}
	// The all-⊥ solution claims no interprocedural constants — trivially
	// sound.
	if ks := res.ConstantsOf("WORK"); len(ks) != 0 {
		t.Errorf("degraded-to-bottom result still claims constants: %v", ks)
	}
}

// TestExpiredDeadlineDegradesSoundly: a context that is already past
// its deadline must not hang or error out; the analyzer degrades to the
// bottom solution with warnings on the deadline axis.
func TestExpiredDeadlineDegradesSoundly(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()

	res, err := AnalyzeContext(ctx, "robust.f", robustSrc, DefaultConfig())
	if err != nil {
		t.Fatalf("AnalyzeContext: %v (deadline expiry must degrade, not fail)", err)
	}
	if !res.Degraded() {
		t.Fatal("expired deadline produced no degradation warnings")
	}
	for _, d := range res.Degradations {
		if d.Axis != string(guard.AxisDeadline) {
			t.Errorf("degradation axis = %q, want %q", d.Axis, guard.AxisDeadline)
		}
	}
	if ks := res.ConstantsOf("WORK"); len(ks) != 0 {
		t.Errorf("deadline-degraded result claims constants: %v", ks)
	}
}

// TestSolverStepBudgetDegrades: a real (non-injected) step budget too
// small for the program triggers the fallback chain.
func TestSolverStepBudgetDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget.MaxSolverSteps = 1
	res, err := Analyze("robust.f", robustSrc, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("MaxSolverSteps=1 produced no degradation")
	}
	for _, d := range res.Degradations {
		if d.Axis != string(guard.AxisSolverSteps) {
			t.Errorf("degradation axis = %q, want %q", d.Axis, guard.AxisSolverSteps)
		}
	}
}

// TestExprSizeBudgetWarnsAndStaysSound: a tiny expression-size budget
// truncates polynomial jump functions to opaque values — a sound loss
// of precision reported on the jf-expr-size axis, not a failure.
func TestExprSizeBudgetWarnsAndStaysSound(t *testing.T) {
	// The polynomial jump function lives in MID, where K is a formal —
	// in MAIN it would constant-fold before any large expression exists.
	src := `PROGRAM MAIN
CALL MID(4)
END
SUBROUTINE MID(K)
INTEGER K
CALL WORK(K * K + K * 2 + 1)
END
SUBROUTINE WORK(N)
INTEGER N
PRINT *, N
END
`
	cfg := DefaultConfig()
	cfg.Kind = Polynomial
	cfg.Budget.MaxJFExprSize = 2
	res, err := Analyze("poly.f", src, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	found := false
	for _, d := range res.Degradations {
		if d.Axis == string(guard.AxisExprSize) {
			found = true
		}
	}
	if !found {
		t.Errorf("no jf-expr-size warning: %v", res.Degradations)
	}
	// Truncation must only lose constants, never invent them: the full
	// run proves N=25; the truncated run must claim N=25 or nothing.
	full, err := Analyze("poly.f", src, func() Config { c := DefaultConfig(); c.Kind = Polynomial; return c }())
	if err != nil {
		t.Fatalf("unbudgeted Analyze: %v", err)
	}
	if !subsetOf(res.ConstantsOf("WORK"), full.ConstantsOf("WORK")) {
		t.Errorf("truncated constants %v ⊄ full constants %v", res.ConstantsOf("WORK"), full.ConstantsOf("WORK"))
	}
}

// TestBudgetedAnalysisUnaffectedWhenGenerous: a budget the analysis
// fits inside must not change the answer.
func TestBudgetedAnalysisUnaffectedWhenGenerous(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget = Budget{MaxSolverSteps: 1_000_000, MaxRounds: 10, MaxJFExprSize: 10_000}
	got, err := Analyze("robust.f", robustSrc, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got.Degraded() {
		t.Fatalf("generous budget degraded: %v", got.Degradations)
	}
	want, err := Analyze("robust.f", robustSrc, DefaultConfig())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if g, w := got.SubstitutionCount(), want.SubstitutionCount(); g != w {
		t.Errorf("SubstitutionCount = %d under budget, %d without", g, w)
	}
}

// subsetOf reports whether every constant in sub appears in super.
func subsetOf(sub, super []Constant) bool {
	have := make(map[Constant]bool, len(super))
	for _, k := range super {
		have[k] = true
	}
	for _, k := range sub {
		if !have[k] {
			return false
		}
	}
	return true
}
