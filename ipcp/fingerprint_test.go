package ipcp

import (
	"regexp"
	"testing"
)

const fpSrc = `PROGRAM MAIN
INTEGER K
K = 2 + 3
CALL WORK(K, 7)
END
SUBROUTINE WORK(N, M)
INTEGER N, M
PRINT *, N + M
END
`

// TestFingerprintStableAcrossIrrelevantConfig: axes that cannot change
// any analysis artifact — parallelism, solver, fail-fast, the cache
// handle, step/round budgets — must not perturb the routing key, or a
// coordinator would scatter memo-equivalent requests across backends.
func TestFingerprintStableAcrossIrrelevantConfig(t *testing.T) {
	base := DefaultConfig()
	want := Fingerprint("p.f", fpSrc, base)
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(want) {
		t.Fatalf("fingerprint %q is not a sha-256 hex digest", want)
	}

	variants := map[string]Config{}
	c := base
	c.Parallelism = 8
	variants["parallelism"] = c
	c = base
	c.Parallelism = 1
	variants["parallelism-serial"] = c
	c = base
	c.Solver = BindingGraph
	variants["solver"] = c
	c = base
	c.FailFast = true
	variants["failfast"] = c
	c = base
	c.Cache = NewCache(CacheOptions{})
	variants["cache"] = c
	c = base
	c.Budget.MaxSolverSteps = 12345
	variants["solver-steps"] = c
	c = base
	c.Budget.MaxRounds = 7
	variants["rounds"] = c

	for name, cfg := range variants {
		if got := Fingerprint("p.f", fpSrc, cfg); got != want {
			t.Errorf("%s: fingerprint changed on a memo-irrelevant axis\n got %s\nwant %s", name, got, want)
		}
	}
}

// TestFingerprintSensitiveToProgramAndConfig: anything that can change
// which memoized artifacts apply must change the key.
func TestFingerprintSensitiveToProgramAndConfig(t *testing.T) {
	base := DefaultConfig()
	want := Fingerprint("p.f", fpSrc, base)

	seen := map[string]string{"base": want}
	check := func(name, fp string) {
		t.Helper()
		for prev, old := range seen {
			if fp == old {
				t.Errorf("%s: fingerprint collides with %s", name, prev)
			}
		}
		seen[name] = fp
	}

	check("edited-source", Fingerprint("p.f", fpSrc+"\n", base))
	check("renamed-file", Fingerprint("q.f", fpSrc, base))
	c := base
	c.Kind = Polynomial
	check("kind", Fingerprint("p.f", fpSrc, c))
	c = base
	c.UseMOD = false
	check("mod", Fingerprint("p.f", fpSrc, c))
	c = base
	c.UseReturnJFs = false
	check("ret", Fingerprint("p.f", fpSrc, c))
	c = base
	c.FullSubstitution = true
	check("fullsubst", Fingerprint("p.f", fpSrc, c))
	c = base
	c.Complete = true
	check("complete", Fingerprint("p.f", fpSrc, c))
	c = base
	c.Gated = true
	check("gated", Fingerprint("p.f", fpSrc, c))
	c = base
	c.Budget.MaxJFExprSize = 9
	check("expr-size", Fingerprint("p.f", fpSrc, c))
	for _, dom := range []string{"interval", "parity", "taint", "cond-const"} {
		c = base
		c.Domain = dom
		check("domain-"+dom, Fingerprint("p.f", fpSrc, c))
	}
}

// TestFingerprintDomainDefaultIsConst: the empty selector and the
// explicit constant domain are the same configuration, so they must
// route identically.
func TestFingerprintDomainDefaultIsConst(t *testing.T) {
	base := DefaultConfig()
	c := base
	c.Domain = "const"
	if got, want := Fingerprint("p.f", fpSrc, c), Fingerprint("p.f", fpSrc, base); got != want {
		t.Fatalf("explicit const domain changed the fingerprint: %s vs %s", got, want)
	}
}

// TestFingerprintFilesMatchesSingle: the single-file convenience and
// the multi-file form agree, and unit order is significant.
func TestFingerprintFilesMatchesSingle(t *testing.T) {
	cfg := DefaultConfig()
	single := Fingerprint("p.f", fpSrc, cfg)
	multi := FingerprintFiles([]SourceFile{{Name: "p.f", Src: fpSrc}}, cfg)
	if single != multi {
		t.Fatalf("single-file and files forms disagree: %s vs %s", single, multi)
	}
	a := FingerprintFiles([]SourceFile{{Name: "a.f", Src: "X"}, {Name: "b.f", Src: "Y"}}, cfg)
	b := FingerprintFiles([]SourceFile{{Name: "b.f", Src: "Y"}, {Name: "a.f", Src: "X"}}, cfg)
	if a == b {
		t.Fatal("file order must be significant")
	}
}
