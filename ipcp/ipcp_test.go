package ipcp

import (
	"strings"
	"testing"
)

const demo = `PROGRAM MAIN
INTEGER N
COMMON /CFG/ NX
NX = 64
CALL SETUP(N)
CALL WORK(N)
END

SUBROUTINE SETUP(K)
INTEGER K
K = 100
END

SUBROUTINE WORK(M)
INTEGER M, NX, I, S
COMMON /CFG/ NX
S = 0
DO I = 1, M
  S = S + NX
ENDDO
PRINT *, S
END
`

func TestAnalyzeBasics(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	procs := res.Procedures()
	if len(procs) != 3 || procs[0] != "MAIN" {
		t.Fatalf("procedures = %v", procs)
	}
	ks := res.ConstantsOf("WORK")
	if len(ks) != 2 {
		t.Fatalf("CONSTANTS(WORK) = %v", ks)
	}
	byName := map[string]Constant{}
	for _, k := range ks {
		byName[k.Name] = k
	}
	if byName["M"].Value != 100 || byName["M"].IsGlobal {
		t.Errorf("M = %+v", byName["M"])
	}
	if byName["NX"].Value != 64 || !byName["NX"].IsGlobal || byName["NX"].Block != "CFG" {
		t.Errorf("NX = %+v", byName["NX"])
	}
	if res.ConstantsOf("NOPE") != nil {
		t.Error("unknown procedure should return nil")
	}
	// Case-insensitive lookup.
	if len(res.ConstantsOf("work")) != 2 {
		t.Error("lookup should be case-insensitive")
	}
}

func TestConstantsMap(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Constants()
	if _, ok := m["WORK"]; !ok {
		t.Errorf("Constants() = %v", m)
	}
}

func TestKindsDiffer(t *testing.T) {
	lit := Config{Kind: Literal, UseMOD: true, UseReturnJFs: true}
	resLit, err := Analyze("demo.f", demo, lit)
	if err != nil {
		t.Fatal(err)
	}
	resDef, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if resLit.SubstitutionCount() >= resDef.SubstitutionCount() {
		t.Errorf("literal (%d) should find fewer than pass-through (%d)",
			resLit.SubstitutionCount(), resDef.SubstitutionCount())
	}
}

func TestTransformedSource(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.TransformedSource()
	if !strings.Contains(out, "DO I = 1, 100") {
		t.Errorf("expected loop bound substitution in:\n%s", out)
	}
	if !strings.Contains(out, "S + 64") {
		t.Errorf("expected COMMON constant substitution in:\n%s", out)
	}
}

func TestRun(t *testing.T) {
	out, err := Run("demo.f", demo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "6400" {
		t.Errorf("output = %q, want 6400", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, err := Analyze("bad.f", "PROGRAM P\nCALL NOPE(1)\nEND\n", DefaultConfig())
	if err == nil {
		t.Fatal("expected error for undefined procedure")
	}
	if !strings.Contains(err.Error(), "undefined procedure") {
		t.Errorf("err = %v", err)
	}
}

func TestWarningsSurface(t *testing.T) {
	src := `PROGRAM P
I = F(1)
END
INTEGER FUNCTION F(A)
A = A + 1
END
`
	res, err := Analyze("w.f", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "never assigns its result") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestStats(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jf, low, rounds := res.Stats()
	if jf == 0 || low == 0 || rounds != 1 {
		t.Errorf("stats = %d %d %d", jf, low, rounds)
	}
}

func TestSolverChoice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Solver = BindingGraph
	res, err := Analyze("demo.f", demo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := Analyze("demo.f", demo, DefaultConfig())
	if res.SubstitutionCount() != def.SubstitutionCount() {
		t.Error("solvers disagree")
	}
}

func TestCompleteConfig(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER N
N = 1
CALL S(N)
END
SUBROUTINE S(K)
INTEGER K, M
IF (K .EQ. 1) THEN
  M = 5
ELSE
  M = 6
ENDIF
CALL T(M)
END
SUBROUTINE T(J)
INTEGER J
PRINT *, J
END
`
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Complete: true}
	res, err := Analyze("c.f", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks := res.ConstantsOf("T")
	if len(ks) != 1 || ks[0].Value != 5 {
		t.Errorf("complete propagation: CONSTANTS(T) = %v", ks)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Literal, Intraprocedural, PassThrough, Polynomial} {
		if k.String() == "" {
			t.Error("empty Kind string")
		}
	}
	if PassThrough.String() != "pass-through" {
		t.Errorf("PassThrough = %q", PassThrough.String())
	}
}

func TestSubstitutionCountsPerProc(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	per := res.SubstitutionCounts()
	if per["WORK"] == 0 {
		t.Errorf("per-proc counts = %v", per)
	}
}

func TestConstantString(t *testing.T) {
	c := Constant{Procedure: "WORK", Name: "NX", Value: 64}
	if c.String() != "WORK: (NX, 64)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestAnalyzeFiles(t *testing.T) {
	files := []SourceFile{
		{"main.f", `PROGRAM MAIN
INTEGER G
COMMON /CFG/ G
G = 7
CALL WORK
END
`},
		{"work.f", `SUBROUTINE WORK()
INTEGER H
COMMON /CFG/ H
PRINT *, H
END
`},
	}
	res, err := AnalyzeFiles(files, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ks := res.ConstantsOf("WORK")
	if len(ks) != 1 || ks[0].Value != 7 {
		t.Fatalf("cross-file COMMON constant lost: %v", ks)
	}
	// Diagnostics carry per-file positions.
	files = append(files, SourceFile{"bad.f", "SUBROUTINE X()\nCALL NOPE\nEND\n"})
	_, err = AnalyzeFiles(files, DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "bad.f:") {
		t.Errorf("expected bad.f-positioned error, got %v", err)
	}
}

func TestJumpFunctionsDump(t *testing.T) {
	res, err := Analyze("demo.f", demo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lines := res.JumpFunctions()
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "site MAIN→SETUP@0") {
		t.Errorf("missing forward site:\n%s", joined)
	}
	if !strings.Contains(joined, "returns SETUP: R[K]=100") {
		t.Errorf("missing return JF:\n%s", joined)
	}
	if !strings.Contains(joined, "R[CFG#0]") {
		t.Errorf("missing global return JF:\n%s", joined)
	}
}

func TestJumpFunctionsDumpFunctionResult(t *testing.T) {
	src := `PROGRAM MAIN
INTEGER I
I = SIZE()
PRINT *, I
END
INTEGER FUNCTION SIZE()
SIZE = 64
END
`
	res, err := Analyze("f.f", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.JumpFunctions(), "\n")
	if !strings.Contains(joined, "R[result]=64") {
		t.Errorf("missing result summary:\n%s", joined)
	}
}
