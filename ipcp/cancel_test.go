package ipcp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/guard"
)

// waitGoroutines polls until the goroutine count drops to at most want,
// failing the test if it never does: a cancelled analysis must not leak
// worker goroutines.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// assertCleanBudgetError checks the satellite contract for mid-analysis
// cancellation under FailFast: the error is a *BudgetError wrapping
// guard.Exhausted on the deadline axis — never an *InternalError, never
// a raw context error.
func assertCleanBudgetError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("cancelled FailFast analysis succeeded, want *BudgetError")
	}
	var ie *InternalError
	if errors.As(err, &ie) {
		t.Fatalf("cancellation surfaced as *InternalError: %v", ie)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T (%v), want *BudgetError", err, err)
	}
	if be.Axis != string(guard.AxisDeadline) {
		t.Errorf("Axis = %q, want %q", be.Axis, guard.AxisDeadline)
	}
	var ex *guard.Exhausted
	if !errors.As(err, &ex) || ex.Axis != guard.AxisDeadline {
		t.Errorf("underlying error %v does not carry guard.Exhausted{Axis: deadline}", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestCancelDuringSolve cancels the context while the solver is
// iterating: the analysis must abort with a clean deadline error and
// leave no goroutines behind.
func TestCancelDuringSolve(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	for _, parallel := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		remove := guard.Set("solve", func() error {
			cancel() // fires at solver entry; the solver's next Check sees it
			return nil
		})

		before := runtime.NumGoroutine()
		cfg := DefaultConfig()
		cfg.FailFast = true
		cfg.Parallelism = parallel
		res, err := AnalyzeContext(ctx, "cancel.f", robustSrc, cfg)
		remove()
		cancel()
		if res != nil {
			t.Fatalf("parallel=%d: cancelled analysis returned a result", parallel)
		}
		assertCleanBudgetError(t, err)
		waitGoroutines(t, before+2)
	}
}

// TestCancelDuringJump cancels the context during jump-function
// construction (the fan-out phase): workers must stop claiming
// procedures and the build must surface the deadline axis.
func TestCancelDuringJump(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	for _, parallel := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		remove := guard.Set("jump", func() error {
			cancel() // fires at Build entry; per-procedure checks see it
			return nil
		})

		before := runtime.NumGoroutine()
		cfg := DefaultConfig()
		cfg.FailFast = true
		cfg.Parallelism = parallel
		res, err := AnalyzeContext(ctx, "cancel.f", robustSrc, cfg)
		remove()
		cancel()
		if res != nil {
			t.Fatalf("parallel=%d: cancelled analysis returned a result", parallel)
		}
		assertCleanBudgetError(t, err)
		waitGoroutines(t, before+2)
	}
}

// TestCancelWithoutFailFastDegrades pins the library default: the same
// mid-solve cancellation without FailFast yields a sound degraded
// result (err == nil) whose warnings name the deadline axis.
func TestCancelWithoutFailFastDegrades(t *testing.T) {
	t.Setenv(guard.EnvFailPoints, "1")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	remove := guard.Set("solve", func() error {
		cancel()
		return nil
	})
	defer remove()

	res, err := AnalyzeContext(ctx, "cancel.f", robustSrc, DefaultConfig())
	if err != nil {
		t.Fatalf("non-FailFast cancellation failed: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("cancelled analysis reports no degradations")
	}
	found := false
	for _, d := range res.Degradations {
		if d.Axis == string(guard.AxisDeadline) {
			found = true
		}
	}
	if !found {
		t.Errorf("no deadline-axis degradation in %v", res.Degradations)
	}
}

// TestDeadlineExceededDuringSolve uses a real deadline instead of an
// injected hook: an already-expired context must abort FailFast
// analysis with the deadline axis and errors.Is(DeadlineExceeded).
func TestDeadlineExceededDuringSolve(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := DefaultConfig()
	cfg.FailFast = true
	_, err := AnalyzeContext(ctx, "cancel.f", robustSrc, cfg)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T (%v), want *BudgetError", err, err)
	}
	if be.Axis != string(guard.AxisDeadline) {
		t.Errorf("Axis = %q, want deadline", be.Axis)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}
