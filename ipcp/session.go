package ipcp

import (
	"context"
	"errors"
	"sync"

	"repro/internal/session"
	"repro/internal/source"
)

// Session is the public handle on a compiler-daemon session: a resident,
// already-analyzed program that accepts per-unit delta edits and
// re-analyzes incrementally (package session). All methods are safe for
// concurrent use; edits and result reads are serialized per session.
type Session struct {
	mu   sync.Mutex
	s    *session.Session
	name string
	cfg  Config
}

// UnitEdit is one delta against a session's unit list, in wire form.
// Op is "replace", "add", or "delete"; Index addresses the current unit
// list; Text is the unit source (ignored for delete).
type UnitEdit struct {
	Op    string `json:"op"`
	Index int    `json:"index"`
	Text  string `json:"text,omitempty"`
}

// EditInfo reports what one Edit call did.
type EditInfo struct {
	// FastPath is true when every delta avoided a full re-analysis.
	FastPath bool `json:"fast_path"`
	// UnitsInvalidated is the blast-radius size (fast path) or the whole
	// unit count (rebuild).
	UnitsInvalidated int `json:"units_invalidated"`
	// ContextsReused counts value-context replays during the re-analysis.
	ContextsReused int `json:"contexts_reused"`
	// JumpReused and SubstReused count per-procedure artifacts reused in
	// place.
	JumpReused  int `json:"jump_reused"`
	SubstReused int `json:"subst_reused"`
	// DeltaBytes is the raw size of the call's edit payloads.
	DeltaBytes int `json:"delta_bytes"`
	// Units is the unit count after the call.
	Units int `json:"units"`
}

// SessionStats are a session's cumulative counters.
type SessionStats struct {
	Edits            int64  `json:"edits"`
	FastEdits        int64  `json:"fast_edits"`
	FullRebuilds     int64  `json:"full_rebuilds"`
	UnitsInvalidated int64  `json:"units_invalidated"`
	JumpReused       int64  `json:"jump_reused"`
	SubstReused      int64  `json:"subst_reused"`
	ContextHits      uint64 `json:"context_hits"`
	ContextMisses    uint64 `json:"context_misses"`
	DeltaBytes       int64  `json:"delta_bytes"`
}

// ErrBadEdit tags edit-validation failures (unknown op, out-of-range
// index, empty edit list): the session is unchanged and the request —
// not the program — is at fault.
var ErrBadEdit = errors.New("ipcp: invalid session edit")

// sessionError classifies an internal session error the way the
// one-shot pipeline does: front-end diagnostics pass through raw,
// everything else (budget, deadline, internal faults) is wrapped by
// budgetError.
func sessionError(err error) error {
	if err == nil {
		return nil
	}
	var el *source.ErrorList
	if errors.As(err, &el) {
		return err
	}
	var ee *session.EditError
	if errors.As(err, &ee) {
		return errors.Join(ErrBadEdit, err)
	}
	return budgetError(err)
}

// OpenSession analyzes src and keeps the program resident for delta
// edits. Inputs a cold Analyze would reject fail the open with the same
// diagnostics.
func OpenSession(ctx context.Context, filename, src string, cfg Config) (s *Session, err error) {
	defer recoverInternal(&err)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inner, err := session.Open(ctx, filename, src, cfg.internal())
	if err != nil {
		return nil, sessionError(err)
	}
	return &Session{s: inner, name: filename, cfg: cfg}, nil
}

// Edit applies a sequence of deltas and re-analyzes. Validation covers
// the whole sequence up front; an invalid edit returns an error wrapping
// ErrBadEdit with the session untouched. An edit that breaks the
// program (front-end errors, budget exhaustion under FailFast) returns
// the failure and leaves the session in that error state — exactly the
// state a cold analysis of the edited text would report — until a later
// edit repairs it.
func (s *Session) Edit(ctx context.Context, edits []UnitEdit) (info EditInfo, err error) {
	defer recoverInternal(&err)
	in := make([]session.Edit, len(edits))
	for i, e := range edits {
		in[i] = session.Edit{Op: session.Op(e.Op), Index: e.Index, Text: e.Text}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, aerr := s.s.Apply(ctx, in)
	info = EditInfo{
		FastPath:         res.FastPath,
		UnitsInvalidated: res.UnitsInvalidated,
		ContextsReused:   res.ContextsReused,
		JumpReused:       res.JumpReused,
		SubstReused:      res.SubstReused,
		DeltaBytes:       res.DeltaBytes,
		Units:            s.s.NumUnits(),
	}
	return info, sessionError(aerr)
}

// Result assembles the session's current analysis result. The Result
// shares the session's live program and is valid until the next Edit;
// callers that hold it across edits must extract what they need first.
func (s *Session) Result() (r *Result, err error) {
	defer recoverInternal(&err)
	s.mu.Lock()
	defer s.mu.Unlock()
	a, f, sub, front, serr := s.s.Snapshot()
	if serr != nil {
		return nil, sessionError(serr)
	}
	return newResult(a, f, sub, front), nil
}

// Source returns the session's current program text (the concatenation
// of its unit texts — the text cold-analysis equivalence is stated
// against).
func (s *Session) Source() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Source()
}

// NumUnits returns the current unit count.
func (s *Session) NumUnits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.NumUnits()
}

// Stats returns the session's cumulative counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.s.Stats()
	return SessionStats{
		Edits:            st.Edits,
		FastEdits:        st.FastEdits,
		FullRebuilds:     st.FullRebuilds,
		UnitsInvalidated: st.UnitsInvalidated,
		JumpReused:       st.JumpReused,
		SubstReused:      st.SubstReused,
		ContextHits:      st.ContextHits,
		ContextMisses:    st.ContextMisses,
		DeltaBytes:       st.DeltaBytes,
	}
}

// MemoryBytes estimates the session's retained size, for byte-budgeted
// eviction.
func (s *Session) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.MemoryBytes()
}

// Fingerprint returns the content fingerprint of the session's current
// text under its configuration — the key the coordinator uses for
// session affinity.
func (s *Session) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Fingerprint(s.name, s.s.Source(), s.cfg)
}
