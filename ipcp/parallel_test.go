package ipcp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/suite"
)

// fingerprint renders every externally observable facet of a Result as
// one string, so two analyses can be compared byte for byte: the
// CONSTANTS sets, the substitution counts, the transformed source, the
// rendered jump functions, the solver statistics, and any warnings.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, proc := range r.Procedures() {
		ks := r.ConstantsOf(proc)
		if len(ks) == 0 {
			continue
		}
		fmt.Fprintf(&b, "CONSTANTS(%s):", proc)
		for _, k := range ks {
			fmt.Fprintf(&b, " (%s,%d,global=%v,block=%s,ref=%v)", k.Name, k.Value, k.IsGlobal, k.Block, k.Referenced)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total=%d\n", r.SubstitutionCount())
	perProc := r.SubstitutionCounts()
	names := make([]string, 0, len(perProc))
	for name := range perProc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "subst(%s)=%d\n", name, perProc[name])
	}
	for _, line := range r.JumpFunctions() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	jfe, low, rounds := r.Stats()
	fmt.Fprintf(&b, "stats=%d/%d/%d\n", jfe, low, rounds)
	for _, w := range r.Warnings {
		b.WriteString(w)
		b.WriteByte('\n')
	}
	b.WriteString(r.TransformedSource())
	return b.String()
}

func analyzeAt(t *testing.T, name, src string, cfg Config, parallelism int) string {
	t.Helper()
	cfg.Parallelism = parallelism
	res, err := Analyze(name, src, cfg)
	if err != nil {
		t.Fatalf("%s (parallelism %d): %v", name, parallelism, err)
	}
	return fingerprint(res)
}

// TestParallelMatchesSerial is the determinism gate for the parallel
// pipeline: for every suite program under all four jump-function kinds,
// an analysis with a worker pool must be byte-identical to the serial
// one — same constants, same substitutions, same rendered jump
// functions, same transformed source, same solver statistics.
func TestParallelMatchesSerial(t *testing.T) {
	kinds := []Kind{Literal, Intraprocedural, PassThrough, Polynomial}
	for _, spec := range suite.Programs() {
		src := suite.Source(spec)
		for _, kind := range kinds {
			cfg := Config{Kind: kind, UseMOD: true, UseReturnJFs: true}
			t.Run(fmt.Sprintf("%s/%v", spec.Name, kind), func(t *testing.T) {
				serial := analyzeAt(t, spec.Name+".f", src, cfg, 1)
				parallel := analyzeAt(t, spec.Name+".f", src, cfg, 4)
				if serial != parallel {
					t.Errorf("parallel output diverges from serial\nserial:\n%s\nparallel:\n%s", serial, parallel)
				}
			})
		}
	}
}

// TestParallelMatchesSerialModes covers the remaining configuration
// axes on one representative program: complete propagation (iterated
// rounds re-enter the jump-function builder), gated SSA, no-MOD,
// no-return-JFs, and the binding-graph solver.
func TestParallelMatchesSerialModes(t *testing.T) {
	spec, ok := suite.ByName("matrix300")
	if !ok {
		t.Fatal("no suite program matrix300")
	}
	src := suite.Source(spec)
	base := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}
	modes := map[string]func(*Config){
		"complete": func(c *Config) { c.Complete = true },
		"gated":    func(c *Config) { c.Gated = true },
		"no-mod":   func(c *Config) { c.UseMOD = false },
		"no-ret":   func(c *Config) { c.UseReturnJFs = false },
		"binding":  func(c *Config) { c.Solver = BindingGraph },
		"full-sub": func(c *Config) { c.FullSubstitution = true },
	}
	for name, tweak := range modes {
		cfg := base
		tweak(&cfg)
		t.Run(name, func(t *testing.T) {
			serial := analyzeAt(t, "m.f", src, cfg, 1)
			parallel := analyzeAt(t, "m.f", src, cfg, 4)
			if serial != parallel {
				t.Errorf("parallel output diverges from serial\nserial:\n%s\nparallel:\n%s", serial, parallel)
			}
		})
	}
}

// TestConcurrentAnalyze runs the whole public pipeline from many
// goroutines at once — each itself using a worker pool — and demands
// identical results. Run under -race this is the data-race gate for
// the shared front-end and analysis state.
func TestConcurrentAnalyze(t *testing.T) {
	spec, ok := suite.ByName("trfd")
	if !ok {
		t.Fatal("no suite program trfd")
	}
	src := suite.Source(spec)
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 2}

	const goroutines = 8
	prints := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Analyze("trfd.f", src, cfg)
			if err != nil {
				errs[g] = err
				return
			}
			prints[g] = fingerprint(res)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if prints[g] != prints[0] {
			t.Errorf("goroutine %d saw a different result\nfirst:\n%s\ngoroutine %d:\n%s",
				g, prints[0], g, prints[g])
		}
	}
}
