package ipcp

import (
	"strings"
	"testing"
)

func TestAnalyzeWithCloning(t *testing.T) {
	src := `PROGRAM MAIN
CALL SOLVE(8)
CALL SOLVE(512)
END
SUBROUTINE SOLVE(N)
INTEGER N, S
S = N * 2
PRINT *, S
END
`
	plain, err := Analyze("s.f", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.SubstitutionCount() != 0 {
		t.Fatalf("plain count = %d, want 0 (8 ∧ 512 = ⊥)", plain.SubstitutionCount())
	}

	res, info, err := AnalyzeWithCloning("s.f", src, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Created != 2 || info.Rounds != 1 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Cloned) != 1 || !strings.Contains(info.Cloned[0], "SOLVE →") {
		t.Errorf("cloned = %v", info.Cloned)
	}
	if res.SubstitutionCount() == 0 {
		t.Error("cloning should recover substitutable constants")
	}
	// Each clone has its constant.
	k1 := res.ConstantsOf("SOLVE_1")
	k2 := res.ConstantsOf("SOLVE_2")
	if len(k1) != 1 || len(k2) != 1 {
		t.Fatalf("clone constants: %v / %v", k1, k2)
	}
	// Behaviour of the cloned source is unchanged.
	before, _ := Run("a.f", src, nil)
	after, _ := Run("b.f", info.Source, nil)
	if before != after {
		t.Errorf("behaviour changed:\n%q vs %q", before, after)
	}
}

func TestAnalyzeWithCloningNoOpWhenUniform(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(7)
CALL S(7)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	_, info, err := AnalyzeWithCloning("u.f", src, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Created != 0 || info.Rounds != 0 {
		t.Errorf("uniform sites need no cloning: %+v", info)
	}
	if info.Source != src {
		t.Error("source should be untouched")
	}
}

func TestAnalyzeWithCloningTerminates(t *testing.T) {
	// Chained conflicts: cloning SOLVE exposes conflicts one level
	// deeper; the loop must settle within maxRounds.
	src := `PROGRAM MAIN
CALL MID(1)
CALL MID(2)
END
SUBROUTINE MID(K)
INTEGER K
CALL LEAF(K)
END
SUBROUTINE LEAF(N)
INTEGER N, M
M = N * 10
PRINT *, M
END
`
	res, info, err := AnalyzeWithCloning("c.f", src, DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rounds == 0 {
		t.Fatal("expected at least one cloning round")
	}
	// After cloning MID (and then LEAF), the leaf constants surface.
	total := 0
	for _, ks := range res.Constants() {
		total += len(ks)
	}
	if total < 4 {
		t.Errorf("expected constants in the clones, got %v", res.Constants())
	}
	before, _ := Run("a.f", src, nil)
	after, _ := Run("b.f", info.Source, nil)
	if before != after {
		t.Errorf("behaviour changed:\n%q vs %q", before, after)
	}
}
