package ipcp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/suite"
)

// analyzeCachedAt analyzes with the given cache attached and returns
// the result fingerprint.
func analyzeCachedAt(t *testing.T, cache *Cache, name, src string, cfg Config, parallelism int) string {
	t.Helper()
	cfg.Parallelism = parallelism
	cfg.Cache = cache
	res, err := Analyze(name, src, cfg)
	if err != nil {
		t.Fatalf("%s (cached, parallelism %d): %v", name, parallelism, err)
	}
	return fingerprint(res)
}

// TestCacheEquivalence is the incremental-analysis correctness gate:
// for every suite program, every jump-function kind, both solvers, and
// serial and parallel pipelines, the cached analysis — both the cold
// run that populates the cache and the warm run that reuses every
// artifact — must be byte-identical to the uncached one.
func TestCacheEquivalence(t *testing.T) {
	kinds := []Kind{Literal, Intraprocedural, PassThrough, Polynomial}
	solvers := []Solver{Worklist, BindingGraph}
	for _, spec := range suite.Programs() {
		src := suite.Source(spec)
		for _, kind := range kinds {
			for _, solver := range solvers {
				for _, par := range []int{1, 4} {
					cfg := Config{Kind: kind, UseMOD: true, UseReturnJFs: true, Solver: solver}
					name := fmt.Sprintf("%s/%v/%v/p%d", spec.Name, kind, solver, par)
					t.Run(name, func(t *testing.T) {
						want := analyzeAt(t, spec.Name+".f", src, cfg, par)
						cache := NewCache(CacheOptions{})
						cold := analyzeCachedAt(t, cache, spec.Name+".f", src, cfg, par)
						warm := analyzeCachedAt(t, cache, spec.Name+".f", src, cfg, par)
						if cold != want {
							t.Errorf("cold cached output diverges from uncached\nuncached:\n%s\ncached:\n%s", want, cold)
						}
						if warm != want {
							t.Errorf("warm cached output diverges from uncached\nuncached:\n%s\ncached:\n%s", want, warm)
						}
						if s := cache.Stats(); s.Hits == 0 {
							t.Errorf("warm run recorded no cache hits: %+v", s)
						}
					})
				}
			}
		}
	}
}

// TestCacheGatedAndNoMOD covers the remaining configuration axes
// (gated γ jump functions, MOD off, return jump functions off,
// full substitution) on one representative program.
func TestCacheGatedAndNoMOD(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Skip("no spec77 in suite")
	}
	src := suite.Source(spec)
	configs := []Config{
		{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Gated: true},
		{Kind: PassThrough, UseMOD: false, UseReturnJFs: true},
		{Kind: PassThrough, UseMOD: true, UseReturnJFs: false},
		{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, FullSubstitution: true},
	}
	for i, cfg := range configs {
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			want := analyzeAt(t, "spec77.f", src, cfg, 1)
			cache := NewCache(CacheOptions{})
			for round := 0; round < 2; round++ {
				got := analyzeCachedAt(t, cache, "spec77.f", src, cfg, 1)
				if got != want {
					t.Errorf("round %d diverges from uncached", round)
				}
			}
		})
	}
}

// TestCacheCompletePropagation checks the complete-propagation loop
// (which bypasses the jump-function cache but still uses the world and
// substitution caches) stays byte-identical.
func TestCacheCompletePropagation(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Skip("no spec77 in suite")
	}
	src := suite.Source(spec)
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Complete: true}
	want := analyzeAt(t, "spec77.f", src, cfg, 1)
	cache := NewCache(CacheOptions{})
	for round := 0; round < 2; round++ {
		if got := analyzeCachedAt(t, cache, "spec77.f", src, cfg, 1); got != want {
			t.Errorf("round %d diverges from uncached", round)
		}
	}
}

// editOneUnit flips the constant in the first assignment-looking line
// it finds inside the named unit, producing a semantically different
// program that shares every other unit's text.
func editSource(src, marker, replacement string) (string, bool) {
	i := strings.Index(src, marker)
	if i < 0 {
		return src, false
	}
	return src[:i] + replacement + src[i+len(marker):], true
}

// TestCacheEditInvalidation re-analyzes edited variants of each suite
// program against a shared cache and checks every answer matches the
// uncached analysis of the same text — i.e. unit-level reuse never
// leaks stale constants into an edited program, and an edit to a callee
// invalidates its callers' artifacts (their keys include the callee
// closure).
func TestCacheEditInvalidation(t *testing.T) {
	for _, spec := range suite.Programs() {
		src := suite.Source(spec)
		t.Run(spec.Name, func(t *testing.T) {
			cache := NewCache(CacheOptions{})
			cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}

			check := func(label, text string) {
				t.Helper()
				want := analyzeAt(t, spec.Name+".f", text, cfg, 1)
				got := analyzeCachedAt(t, cache, spec.Name+".f", text, cfg, 1)
				if got != want {
					t.Errorf("%s: cached output diverges from uncached", label)
				}
			}

			check("base", src)
			// Constant edits: every "= <n>" becomes a different constant.
			if edited, ok := editSource(src, "= 4", "= 7"); ok {
				check("const-edit", edited)
				check("base-again", src) // original artifacts must survive
			}
			// A structural edit to one unit (dropping a statement changes
			// that unit's summary, so callers' artifacts must miss).
			if edited, ok := editSource(src, "CALL ", "CONTINUE\n      CALL "); ok {
				check("struct-edit", edited)
			}
		})
	}
}

// TestCacheCalleeSignatureChange verifies that editing a callee —
// changing what it returns — invalidates the caller's memoized jump
// functions even though the caller's own text is unchanged.
func TestCacheCalleeSignatureChange(t *testing.T) {
	const template = `      PROGRAM MAIN
      INTEGER K, F
      K = F(3)
      CALL USE(K)
      END

      INTEGER FUNCTION F(N)
      INTEGER N
      F = N * %d
      RETURN
      END

      SUBROUTINE USE(V)
      INTEGER V
      PRINT *, V
      RETURN
      END
`
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}
	cache := NewCache(CacheOptions{})
	for _, mul := range []int{2, 5} {
		src := fmt.Sprintf(template, mul)
		want := analyzeAt(t, "sig.f", src, cfg, 1)
		got := analyzeCachedAt(t, cache, "sig.f", src, cfg, 1)
		if got != want {
			t.Fatalf("mul=%d: cached output diverges from uncached\nuncached:\n%s\ncached:\n%s", mul, want, got)
		}
		if !strings.Contains(want, fmt.Sprintf("(V,%d", 3*mul)) {
			t.Fatalf("mul=%d: expected constant %d to reach USE; fingerprint:\n%s", mul, 3*mul, want)
		}
	}
}

// TestCacheEviction runs a cache with a byte budget far below one
// program's footprint: entries must cycle out (eviction counter moves),
// stores into evicted entries must be dropped silently, and every
// answer must stay byte-identical.
func TestCacheEviction(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Skip("no spec77 in suite")
	}
	src := suite.Source(spec)
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}
	want := analyzeAt(t, "spec77.f", src, cfg, 1)

	cache := NewCache(CacheOptions{MaxBytes: 256 << 10})
	for round := 0; round < 3; round++ {
		if got := analyzeCachedAt(t, cache, "spec77.f", src, cfg, 1); got != want {
			t.Fatalf("round %d under tiny budget diverges from uncached", round)
		}
	}
	s := cache.Stats()
	if s.Evictions == 0 {
		t.Errorf("no evictions under a 256 KiB budget: %+v", s)
	}
	// The in-use entry (here the whole-program world, whose estimated
	// footprint alone exceeds this tiny budget) is deliberately never
	// evicted, so Bytes may exceed MaxBytes — but only by about that one
	// entry's size, never by unbounded accumulation across rounds.
	if s.Bytes > 4<<20 {
		t.Errorf("cache bytes %d grew far beyond one program's footprint (budget %d)", s.Bytes, s.MaxBytes)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines analyzing
// a mix of identical and per-goroutine-edited sources (run under
// -race). Every result must match its uncached reference.
func TestCacheConcurrent(t *testing.T) {
	spec, ok := suite.ByName("adm")
	if !ok {
		spec = suite.Programs()[0]
	}
	src := suite.Source(spec)
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}

	variant := func(i int) string {
		if i%2 == 0 {
			return src
		}
		edited, _ := editSource(src, "= 4", fmt.Sprintf("= %d", 5+i))
		return edited
	}
	want := make(map[int]string)
	for i := 0; i < 4; i++ {
		want[i] = analyzeAt(t, "c.f", variant(i), cfg, 2)
	}

	cache := NewCache(CacheOptions{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				i := (g + iter) % 4
				c := cfg
				c.Parallelism = 2
				c.Cache = cache
				res, err := Analyze("c.f", variant(i), c)
				if err != nil {
					errs <- fmt.Sprintf("goroutine %d iter %d: %v", g, iter, err)
					return
				}
				if fp := fingerprint(res); fp != want[i] {
					errs <- fmt.Sprintf("goroutine %d iter %d: output diverges", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestCacheUnderDegradation drives the degradation chain (tiny solver
// budget) with a cache attached: degraded attempts must never poison
// the cache, and outputs must stay byte-identical to the uncached
// degraded run.
func TestCacheUnderDegradation(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Skip("no spec77 in suite")
	}
	src := suite.Source(spec)
	for _, budget := range []Budget{
		{MaxSolverSteps: 50},
		{MaxJFExprSize: 4},
		{MaxSolverSteps: 1},
	} {
		cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Budget: budget}
		want := analyzeAt(t, "spec77.f", src, cfg, 1)
		cache := NewCache(CacheOptions{})
		for round := 0; round < 2; round++ {
			if got := analyzeCachedAt(t, cache, "spec77.f", src, cfg, 1); got != want {
				t.Errorf("budget %+v round %d diverges from uncached", budget, round)
			}
		}
		// The same cache must also serve an unbudgeted run correctly.
		free := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}
		wantFree := analyzeAt(t, "spec77.f", src, free, 1)
		if got := analyzeCachedAt(t, cache, "spec77.f", src, free, 1); got != wantFree {
			t.Errorf("budget %+v: unbudgeted run through used cache diverges", budget)
		}
	}
}

// TestCacheFallbackOnErrors checks that erroneous and odd inputs take
// the uncached path and report the same diagnostics with and without a
// cache.
func TestCacheFallbackOnErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"      GARBAGE\n", // no unit header
		"      PROGRAM P\n      X = UNDEFVAR(1,\n      END\n", // parse error
		"      PROGRAM P\n      CALL NOSUCH(1)\n      END\n",  // sem error (undefined subroutine)
	}
	cfg := DefaultConfig()
	for i, src := range cases {
		cached := cfg
		cached.Cache = NewCache(CacheOptions{})
		_, err1 := Analyze("bad.f", src, cfg)
		_, err2 := Analyze("bad.f", src, cached)
		if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
			t.Errorf("case %d: cached error %q, uncached %q", i, errStr(err2), errStr(err1))
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
