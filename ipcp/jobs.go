package ipcp

import "time"

// TenantQuota is one tenant's share of the durable batch/job subsystem
// (the /v1/jobs API served by ipcp-serve and proxied by ipcp-coord).
// Scheduling across tenants is weighted fair queueing: a tenant with
// Weight 3 is dispatched three jobs for every one job of a Weight-1
// tenant while both have work queued, and an idle tenant's unused share
// is redistributed — weights bound interference, they never strand
// capacity. The zero value of each field selects the server's default.
type TenantQuota struct {
	// Weight is the tenant's fair-queueing weight (default 1).
	Weight int
	// MaxQueued caps the tenant's jobs waiting for a worker; a batch
	// that would exceed it is rejected whole with 429 + Retry-After
	// (default 1024).
	MaxQueued int
	// MaxInFlight caps the tenant's jobs running at once, so one
	// tenant's burst cannot occupy every worker (default: the job
	// worker count).
	MaxInFlight int
}

// JobPolicy tunes how the job subsystem executes and retains jobs. The
// zero value of each field selects the documented default.
type JobPolicy struct {
	// MaxAttempts is how many times a job may fail transiently before
	// it is quarantined in the poison state with its attributed error
	// (default 3). Each retry re-runs the analysis one step down the
	// sound degradation chain, exactly like the synchronous retry
	// ladder.
	MaxAttempts int
	// DefaultTTL is the deadline granted to a job whose submission
	// carries no ttl_ms (default 10m); MaxTTL caps what a submission
	// may ask for (default 1h). A job that is still queued or running
	// past its deadline moves to the expired state.
	DefaultTTL time.Duration
	MaxTTL     time.Duration
	// Retention is how long terminal jobs (done, poisoned, expired,
	// canceled) stay pollable before they are pruned (default 30m).
	// Within the window, resubmitting an identical program for the
	// same tenant returns the existing job instead of re-executing —
	// the fingerprint-keyed idempotency that makes crash re-execution
	// exactly-once-observable.
	Retention time.Duration
}
