package ipcp

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

// TestParallelIdentityOnLargeGenerated is the arena determinism gate on
// programs big enough to force every per-worker symbolic Builder
// through multiple slab chunks and intern-table growth cycles: at
// Parallelism 4 each worker interns into its own u32-indexed pool, in
// an order that differs from the serial builder's, and the merged
// output must still be byte-identical to Parallelism 1. Pool-order
// leakage (e.g. comparing by node id instead of StructCompare) shows up
// here as a fingerprint diff.
func TestParallelIdentityOnLargeGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("large generated programs")
	}
	for _, tc := range []struct {
		seed, procs, stmts int
	}{
		{seed: 3, procs: 24, stmts: 30},
		{seed: 17, procs: 60, stmts: 20},
	} {
		src := gen.Program(gen.Config{Seed: int64(tc.seed), NumProcs: tc.procs, StmtsPerProc: tc.stmts})
		name := fmt.Sprintf("gen-s%d-p%d", tc.seed, tc.procs)
		for _, kind := range []Kind{PassThrough, Polynomial} {
			cfg := Config{Kind: kind, UseMOD: true, UseReturnJFs: true}
			t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
				serial := analyzeAt(t, name+".f", src, cfg, 1)
				parallel := analyzeAt(t, name+".f", src, cfg, 4)
				if serial != parallel {
					t.Errorf("parallel output diverges from serial on %s", name)
				}
			})
		}
	}
}
