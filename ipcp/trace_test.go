package ipcp

import (
	"testing"
	"time"

	"repro/internal/suite"
)

// statsByPhase indexes a result's phase stats by name.
func statsByPhase(r *Result) map[string]PhaseStat {
	m := make(map[string]PhaseStat, len(r.PhaseStats))
	for _, s := range r.PhaseStats {
		m[s.Phase] = s
	}
	return m
}

// TestPhaseStatsPopulated: every analysis reports a stat for each phase
// that ran, in execution order, and the per-phase wall times can never
// sum past the wall time of the whole call (phases are timed
// disjointly; the driver's own glue is the only unattributed slice).
func TestPhaseStatsPopulated(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Fatal("no suite program spec77")
	}
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1}
	start := time.Now()
	res, err := Analyze("spec77.f", suite.Source(spec), cfg)
	total := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	want := []string{"parse", "sem", "graph", "jump", "solve", "subst", "assemble"}
	if len(res.PhaseStats) != len(want) {
		t.Fatalf("PhaseStats = %+v, want %d phases %v", res.PhaseStats, len(want), want)
	}
	var sum int64
	for i, s := range res.PhaseStats {
		if s.Phase != want[i] {
			t.Errorf("phase[%d] = %q, want %q", i, s.Phase, want[i])
		}
		if s.Runs != 1 {
			t.Errorf("%s: runs = %d, want 1", s.Phase, s.Runs)
		}
		if s.WallNs < 0 {
			t.Errorf("%s: negative wall %d", s.Phase, s.WallNs)
		}
		sum += s.WallNs
	}
	if sum > total.Nanoseconds() {
		t.Errorf("phase walls sum to %v, more than the whole call's %v", time.Duration(sum), total)
	}
	m := statsByPhase(res)
	for _, ph := range []string{"parse", "sem", "graph", "jump", "subst"} {
		if m[ph].Units == 0 {
			t.Errorf("%s: units = 0, want the program's unit count", ph)
		}
	}
	if m["solve"].Units == 0 {
		t.Error("solve: units = 0, want the jump-function evaluation count")
	}
}

// TestPhaseStatsShapeParity: the trace's shape — phase names, run and
// unit counts — is a function of the program and configuration alone,
// not of the worker count. Only wall times may differ between serial
// and parallel runs.
func TestPhaseStatsShapeParity(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Fatal("no suite program spec77")
	}
	src := suite.Source(spec)
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true}

	shape := func(par int) []PhaseStat {
		c := cfg
		c.Parallelism = par
		res, err := Analyze("spec77.f", src, c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		out := make([]PhaseStat, len(res.PhaseStats))
		for i, s := range res.PhaseStats {
			s.WallNs = 0 // timing is the one axis allowed to differ
			out[i] = s
		}
		return out
	}

	serial, parallel := shape(1), shape(4)
	if len(serial) != len(parallel) {
		t.Fatalf("phase count differs: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("phase[%d] shape differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}

// TestPhaseStatsMemo: with a cache attached the trace gains a lookup
// phase that subsumes the front end (the cache builds worlds through
// its own content-addressed parser, so parse and sem never appear).
// Only the warm run — reusing an already-built world — reports a memo
// hit there.
func TestPhaseStatsMemo(t *testing.T) {
	spec, ok := suite.ByName("spec77")
	if !ok {
		t.Fatal("no suite program spec77")
	}
	cfg := Config{Kind: Polynomial, UseMOD: true, UseReturnJFs: true, Parallelism: 1,
		Cache: NewCache(CacheOptions{})}

	cold, err := Analyze("spec77.f", suite.Source(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm := statsByPhase(cold)
	if s, ok := cm["lookup"]; !ok || s.MemoHits != 0 {
		t.Errorf("cold lookup stat = %+v, want present with 0 hits (the build is a miss)", s)
	}

	warm, err := Analyze("spec77.f", suite.Source(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wm := statsByPhase(warm)
	if s := wm["lookup"]; s.MemoHits == 0 {
		t.Errorf("warm lookup stat = %+v, want a whole-world hit", s)
	}
	for _, run := range []struct {
		name string
		m    map[string]PhaseStat
	}{{"cold", cm}, {"warm", wm}} {
		for _, ph := range []string{"parse", "sem"} {
			if _, ok := run.m[ph]; ok {
				t.Errorf("%s run reports a %s stat; lookup subsumes the front end", run.name, ph)
			}
		}
		for _, ph := range []string{"graph", "solve", "assemble"} {
			if _, ok := run.m[ph]; !ok {
				t.Errorf("%s run missing %s stat", run.name, ph)
			}
		}
	}
}

// cloneTestSrc forces one profitable cloning round: SOLVE is called
// with two distinct constants, so 8 ∧ 512 = ⊥ without cloning.
const cloneTestSrc = `PROGRAM MAIN
CALL SOLVE(8)
CALL SOLVE(512)
END
SUBROUTINE SOLVE(N)
INTEGER N, S
S = N * 2
PRINT *, S
END
`

// TestCloningCacheEquivalence: AnalyzeWithCloning rides the same entry
// path as Analyze, so attaching Config.Cache must not change one byte
// of its output — results, clone decisions, or transformed source.
func TestCloningCacheEquivalence(t *testing.T) {
	run := func(cache *Cache) (string, *CloneInfo) {
		cfg := DefaultConfig()
		cfg.Cache = cache
		res, info, err := AnalyzeWithCloning("s.f", cloneTestSrc, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res), info
	}

	plainFP, plainInfo := run(nil)
	cache := NewCache(CacheOptions{})
	coldFP, coldInfo := run(cache)
	warmFP, warmInfo := run(cache)

	for _, c := range []struct {
		name string
		fp   string
		info *CloneInfo
	}{{"cold cached", coldFP, coldInfo}, {"warm cached", warmFP, warmInfo}} {
		if c.fp != plainFP {
			t.Errorf("%s result diverges from uncached:\n%s\nvs\n%s", c.name, c.fp, plainFP)
		}
		if c.info.Created != plainInfo.Created || c.info.Rounds != plainInfo.Rounds ||
			c.info.Source != plainInfo.Source {
			t.Errorf("%s clone info diverges: %+v vs %+v", c.name, c.info, plainInfo)
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("warm cloning run recorded no cache hits: %+v", s)
	}
}

// TestCloningPhaseStats: the cloning driver contributes a clone phase
// whose unit count is the number of procedure bodies created.
func TestCloningPhaseStats(t *testing.T) {
	res, info, err := AnalyzeWithCloning("s.f", cloneTestSrc, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhase(res)
	s, ok := m["clone"]
	if !ok {
		t.Fatalf("no clone stat in %+v", res.PhaseStats)
	}
	if s.Units != int64(info.Created) {
		t.Errorf("clone units = %d, want Created = %d", s.Units, info.Created)
	}
	if s.Runs < 1 {
		t.Errorf("clone runs = %d, want >= 1", s.Runs)
	}
	if _, ok := m["subst"]; !ok {
		t.Error("final round's analysis phases missing from cloning result")
	}
}
