// Package ipcp is the public API of the interprocedural constant
// propagation library — a from-scratch implementation of the
// jump-function framework of Callahan, Cooper, Kennedy, and Torczon
// ("Interprocedural Constant Propagation", SIGPLAN 1986), with the jump
// function implementations studied empirically by Grove and Torczon
// (PLDI 1993).
//
// The analyzer consumes F77s, a FORTRAN 77 subset (see the README for
// the grammar). A minimal session:
//
//	res, err := ipcp.Analyze("prog.f", src, ipcp.DefaultConfig())
//	if err != nil { ... }
//	for _, k := range res.ConstantsOf("WORK") {
//	    fmt.Printf("%s = %d on every entry to WORK\n", k.Name, k.Value)
//	}
//
// Configurations mirror the paper's experimental axes: the jump
// function implementation (Literal, Intraprocedural, PassThrough,
// Polynomial), interprocedural MOD information, return jump functions,
// and iterated "complete" propagation with dead-code elimination.
package ipcp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/interp"
	"repro/internal/jump"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/subst"
)

// Kind selects the forward jump function implementation (paper §3.1).
type Kind int

const (
	// Literal: only literal constants at call sites propagate.
	Literal Kind = iota
	// Intraprocedural: constants proven by intraprocedural propagation
	// and value numbering propagate (one call-graph edge at a time).
	Intraprocedural
	// PassThrough: additionally, formals passed through unmodified
	// carry constants along arbitrary call paths. The paper's
	// recommended implementation.
	PassThrough
	// Polynomial: actuals expressible as polynomials of the caller's
	// entry values propagate — the most powerful (and most expensive)
	// implementation.
	Polynomial
)

func (k Kind) String() string { return k.internal().String() }

func (k Kind) internal() jump.Kind {
	switch k {
	case Literal:
		return jump.Literal
	case Intraprocedural:
		return jump.Intraprocedural
	case PassThrough:
		return jump.PassThrough
	default:
		return jump.Polynomial
	}
}

// Solver selects the interprocedural propagation algorithm.
type Solver int

const (
	// Worklist is the simple iterative scheme of the 1993 study.
	Worklist Solver = iota
	// BindingGraph re-evaluates a jump function only when a value in
	// its support lowers, achieving the 1986 paper's cost bounds.
	BindingGraph
)

// Config selects an analysis configuration.
type Config struct {
	// Kind is the forward jump function implementation.
	Kind Kind
	// UseMOD enables interprocedural MOD side-effect summaries at call
	// sites; without them, every call kills every reference actual and
	// every COMMON variable.
	UseMOD bool
	// UseReturnJFs enables return jump functions (constants flowing
	// back out of callees).
	UseReturnJFs bool
	// FullSubstitution lifts the paper's restriction that a return jump
	// function's substituted value is kept only when constant (an
	// extension beyond the paper).
	FullSubstitution bool
	// Complete iterates propagation with constant-driven dead-code
	// elimination until the solution stabilizes (paper Table 3,
	// "Complete Propagation").
	Complete bool
	// Gated builds gated-SSA (γ) jump functions, realizing the paper's
	// suggestion that a GSA-based generator would subsume complete
	// propagation in a single round (an extension; most useful with
	// Kind Polynomial).
	Gated bool
	// Solver selects the propagation algorithm.
	Solver Solver
	// Domain selects the abstract domain the monotone framework
	// propagates. The empty string (and "const") is the paper's
	// constant-propagation lattice; Domains() lists the others:
	// "interval" (ranges with widening), "parity" (even/odd), "taint"
	// (input-dependence), and "cond-const" (constant propagation with
	// branch pruning folded in, equivalent to Complete). Unknown names
	// are an error at Analyze time. The domain is memo-relevant at the
	// whole-program level — it contributes to Fingerprint and to the
	// analysis-service result cache — but jump-function construction is
	// symbolic and shared across domains.
	Domain string
	// Budget bounds the analysis's resource consumption; the zero value
	// is unlimited. On exhaustion the analysis degrades soundly rather
	// than failing (see Result.Degradations).
	Budget Budget
	// Parallelism bounds the worker goroutines used by the phases that
	// fan out per program unit (semantic checking, jump-function
	// construction, substitution counting): <= 0 selects one worker per
	// CPU, 1 runs the pipeline serially. Every Result field — constants,
	// substitution counts, transformed source, solver statistics — is
	// bit-identical across all settings; the knob trades only wall-clock
	// time for cores.
	Parallelism int
	// FailFast turns off in-library graceful degradation: the first
	// budget or deadline exhaustion aborts the analysis and
	// AnalyzeContext returns a *BudgetError instead of a degraded
	// Result. Cancellation also stops the pipeline's worker pools
	// between tasks, so a dead context stops burning CPU promptly.
	// Callers that implement their own retry-at-a-cheaper-configuration
	// policy (such as the ipcp-serve analysis service) set this; plain
	// library users should leave it off and read Result.Degradations.
	FailFast bool
	// Cache, when non-nil, memoizes analysis work across calls (see
	// Cache). Off by default: one-shot command-line analyses gain
	// nothing from it, while long-lived processes (ipcp-serve) enable
	// it. Results are byte-identical either way.
	Cache *Cache
}

// DefaultConfig returns the paper's recommended configuration:
// pass-through jump functions with MOD information and return jump
// functions.
func DefaultConfig() Config {
	return Config{Kind: PassThrough, UseMOD: true, UseReturnJFs: true}
}

func (c Config) internal() core.Config {
	out := core.Config{
		Jump: jump.Config{
			Kind:             c.Kind.internal(),
			UseMOD:           c.UseMOD,
			UseReturnJFs:     c.UseReturnJFs,
			FullSubstitution: c.FullSubstitution,
			Gated:            c.Gated,
		},
		Complete:    c.Complete,
		Budget:      c.Budget.internal(),
		Parallelism: c.Parallelism,
		FailFast:    c.FailFast,
	}
	if c.Solver == BindingGraph {
		out.Solver = core.SolverBinding
	}
	if d, err := domain.Lookup(c.Domain); err == nil {
		out.Domain = d
	}
	return out
}

// validate rejects configurations internal() cannot represent; today
// that is only an unregistered domain name.
func (c Config) validate() error {
	_, err := domain.Lookup(c.Domain)
	return err
}

// Domains lists the registered abstract domain names, sorted; any of
// them is a valid Config.Domain.
func Domains() []string { return domain.Names() }

// Constant is one entry of a CONSTANTS(p) set: the named parameter or
// COMMON variable always holds Value on entry to Procedure.
type Constant struct {
	Procedure string
	Name      string
	Value     int64
	// IsGlobal marks COMMON variables (Name is the canonical member
	// name; Block its COMMON block).
	IsGlobal bool
	Block    string
	// Referenced reports whether the procedure actually reads the value.
	// Constants with Referenced == false are "known but irrelevant"
	// (Metzger & Stroud) — they contribute nothing to optimization.
	Referenced bool
}

func (c Constant) String() string {
	return fmt.Sprintf("%s: (%s, %d)", c.Procedure, c.Name, c.Value)
}

// Result is a completed analysis.
type Result struct {
	analysis *core.Analysis
	file     *ast.File
	subst    *subst.Result
	// Warnings holds non-fatal front-end diagnostics plus a rendered
	// line for each graceful-degradation step (see Degradations).
	Warnings []string
	// Degradations lists the budget-driven fallbacks the analyzer took,
	// in order; empty when the analysis ran to completion as configured.
	Degradations []Warning
	// PhaseStats reports per-phase wall time, work units, cache hits,
	// and degradation events, in execution order (see PhaseStat). Always
	// populated; phases that did not run (e.g. parse after an
	// incremental-cache hit) are absent.
	PhaseStats []PhaseStat
}

// Degraded reports whether any budget axis forced a fallback.
func (r *Result) Degraded() bool { return len(r.Degradations) > 0 }

// Analyze parses, checks, and analyzes an F77s program. Internal
// faults surface as *InternalError, never as panics.
func Analyze(filename, src string, cfg Config) (*Result, error) {
	return AnalyzeContext(context.Background(), filename, src, cfg)
}

// AnalyzeContext is Analyze with a context: cancellation or deadline
// expiry does not abort the analysis but bounds it — the analyzer falls
// back along a sound degradation chain and reports each step in
// Result.Degradations. With Config.FailFast set the chain is disabled:
// the first exhaustion aborts cleanly with a *BudgetError and the
// worker pools stop claiming tasks.
func AnalyzeContext(ctx context.Context, filename, src string, cfg Config) (res *Result, err error) {
	defer recoverInternal(&err)
	return runAnalysis(ctx, []SourceFile{{Name: filename, Src: src}}, false, cfg)
}

// newResult assembles the public Result shared by every pipeline
// configuration: the fresh front end, the memoized replay, and the
// cloning driver all convert warnings and degradations identically.
// front holds the front end's rendered warning diagnostics.
func newResult(analysis *core.Analysis, file *ast.File, sub *subst.Result, front []string) *Result {
	res := &Result{
		analysis: analysis,
		file:     file,
		subst:    sub,
		Warnings: front,
	}
	for _, w := range analysis.Warnings {
		res.Degradations = append(res.Degradations, Warning{
			Axis: string(w.Axis), From: w.From, To: w.To, Detail: w.Detail,
		})
		res.Warnings = append(res.Warnings, w.String())
	}
	return res
}

// Procedures lists the program's procedure names in source order.
func (r *Result) Procedures() []string {
	var out []string
	for _, p := range r.analysis.Prog.Order {
		out = append(out, p.Name)
	}
	return out
}

// ConstantsOf returns CONSTANTS(p) for the named procedure, sorted by
// name (nil if the procedure does not exist or has no constants).
func (r *Result) ConstantsOf(procedure string) []Constant {
	p := r.analysis.Prog.Procs[strings.ToUpper(procedure)]
	if p == nil {
		return nil
	}
	return convertConstants(r.analysis.Constants(p))
}

// Constants returns every procedure's CONSTANTS set.
func (r *Result) Constants() map[string][]Constant {
	out := make(map[string][]Constant)
	for _, p := range r.analysis.Prog.Order {
		if ks := convertConstants(r.analysis.Constants(p)); len(ks) > 0 {
			out[p.Name] = ks
		}
	}
	return out
}

func convertConstants(in []core.Constant) []Constant {
	var out []Constant
	for _, k := range in {
		c := Constant{Procedure: k.Proc.Name, Name: k.Name, Value: k.Value, Referenced: k.Referenced}
		if k.Global != nil {
			c.IsGlobal = true
			c.Block = k.Global.Block
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fact is one abstract-domain fact: the named parameter or COMMON
// variable satisfies Value (the domain's rendering, e.g. "[1,10]",
// "even", "clean") on every entry to Procedure. For the constant
// domains, facts coincide with Constants.
type Fact struct {
	Procedure string
	Name      string
	Value     string
	// IsGlobal marks COMMON variables (Name is the canonical member
	// name; Block its COMMON block).
	IsGlobal bool
	Block    string
}

// Domain reports the abstract domain the analysis ran under.
func (r *Result) Domain() string {
	return r.analysis.Domain().Name()
}

// FactsOf returns the domain facts proven on every entry to the named
// procedure, sorted by name — the generic counterpart of ConstantsOf
// (nil if the procedure does not exist or nothing was proven).
func (r *Result) FactsOf(procedure string) []Fact {
	p := r.analysis.Prog.Procs[strings.ToUpper(procedure)]
	if p == nil {
		return nil
	}
	return convertFacts(r.analysis.Facts(p))
}

// Facts returns every procedure's proven domain facts.
func (r *Result) Facts() map[string][]Fact {
	out := make(map[string][]Fact)
	for _, p := range r.analysis.Prog.Order {
		if fs := convertFacts(r.analysis.Facts(p)); len(fs) > 0 {
			out[p.Name] = fs
		}
	}
	return out
}

func convertFacts(in []core.Fact) []Fact {
	var out []Fact
	for _, f := range in {
		pf := Fact{Procedure: f.Proc.Name, Name: f.Name, Value: f.Value}
		if f.Global != nil {
			pf.IsGlobal = true
			pf.Block = f.Global.Block
		}
		out = append(out, pf)
	}
	return out
}

// SubstitutionCount reports how many constant uses the analyzer would
// substitute into the program text — the effectiveness metric reported
// in the paper's tables.
func (r *Result) SubstitutionCount() int {
	return r.subst.Total
}

// SubstitutionCounts reports the per-procedure breakdown.
func (r *Result) SubstitutionCounts() map[string]int {
	out := make(map[string]int)
	for p, n := range r.subst.PerProc {
		if n > 0 {
			out[p.Name] = n
		}
	}
	return out
}

// TransformedSource returns the program with every discovered constant
// textually substituted (the analyzer's optional output, §4.1).
func (r *Result) TransformedSource() string {
	return core.RenderSubstituted(r.file, r.subst)
}

// JumpFunctions renders every call site's forward jump functions and
// every procedure's return jump functions, in source order — a window
// into the framework's intermediate artifacts (useful for debugging
// and teaching).
func (r *Result) JumpFunctions() []string {
	var out []string
	funcs := r.analysis.Funcs
	for _, p := range r.analysis.Prog.Order {
		pf := funcs.Procs[p]
		if pf == nil {
			continue
		}
		for _, sf := range pf.Sites {
			line := sf.String()
			if sf.Dead {
				line += " [dead]"
			}
			out = append(out, line)
		}
		if sum := funcs.Returns[p]; sum != nil {
			var parts []string
			for i, f := range p.Formals {
				if e := sum.Formals[i]; e != nil {
					parts = append(parts, fmt.Sprintf("R[%s]=%s", f.Name, e))
				}
			}
			var gkeys []string
			for g := range sum.Globals {
				gkeys = append(gkeys, g.Key())
			}
			sort.Strings(gkeys)
			for _, k := range gkeys {
				for g, e := range sum.Globals {
					if g.Key() == k && e != nil {
						parts = append(parts, fmt.Sprintf("R[%s]=%s", k, e))
					}
				}
			}
			if sum.Result != nil {
				parts = append(parts, fmt.Sprintf("R[result]=%s", sum.Result))
			}
			if len(parts) > 0 {
				out = append(out, fmt.Sprintf("returns %s: %s", p.Name, strings.Join(parts, " ")))
			}
		}
	}
	return out
}

// Stats reports solver work counters.
func (r *Result) Stats() (jfEvaluations, lowerings, rounds int) {
	s := r.analysis.Stats
	return s.JFEvaluations, s.Lowerings, s.Rounds
}

// SourceFile is one input file for AnalyzeFiles.
type SourceFile struct {
	Name string
	Src  string
}

// AnalyzeFiles analyzes a program whose units are spread over several
// files (the usual layout for FORTRAN projects). Units from all files
// share one program: COMMON blocks link across files and any file may
// call any other's procedures.
func AnalyzeFiles(files []SourceFile, cfg Config) (*Result, error) {
	return AnalyzeFilesContext(context.Background(), files, cfg)
}

// AnalyzeFilesContext is AnalyzeFiles with a context bounding the
// analysis (see AnalyzeContext).
func AnalyzeFilesContext(ctx context.Context, files []SourceFile, cfg Config) (res *Result, err error) {
	defer recoverInternal(&err)
	return runAnalysis(ctx, files, true, cfg)
}

// CloneInfo reports what AnalyzeWithCloning did.
type CloneInfo struct {
	// Rounds is the number of clone-and-reanalyze passes performed.
	Rounds int
	// Created is the total number of procedure clones.
	Created int
	// Cloned lists "PROC → PROC_1, PROC_2, …" descriptions.
	Cloned []string
	// Source is the final, cloned program text.
	Source string
}

// AnalyzeWithCloning runs interprocedural constant propagation with
// goal-directed procedure cloning (Metzger & Stroud; Cooper, Hall &
// Kennedy): when different call sites deliver different constants to
// the same procedure — values the lattice meet would destroy — the
// procedure is cloned per constant context and the analysis reruns,
// until no profitable clone remains (or maxRounds passes have run).
func AnalyzeWithCloning(filename, src string, cfg Config, maxRounds int) (*Result, *CloneInfo, error) {
	return AnalyzeWithCloningContext(context.Background(), filename, src, cfg, maxRounds)
}

// AnalyzeWithCloningContext is AnalyzeWithCloning with a context
// bounding each round's analysis. Every round runs the same entry path
// as AnalyzeContext — incremental cache, guard barrier, and pipeline
// included — so Config.Cache benefits cloning the same way it benefits
// plain analysis (clone sources recur across rounds and processes).
// Internal faults in the cloning transformation surface as
// *InternalError, never as panics.
func AnalyzeWithCloningContext(ctx context.Context, filename, src string, cfg Config, maxRounds int) (res *Result, info *CloneInfo, err error) {
	defer recoverInternal(&err)
	res, info, err = analyzeWithCloning(ctx, filename, src, cfg, maxRounds)
	return
}

func analyzeWithCloning(ctx context.Context, filename, src string, cfg Config, maxRounds int) (*Result, *CloneInfo, error) {
	if maxRounds <= 0 {
		maxRounds = 3
	}
	info := &CloneInfo{Source: src}
	tr := pipeline.NewTrace()
	cur := src
	for round := 0; ; round++ {
		res, err := AnalyzeContext(ctx, filename, cur, cfg)
		if err != nil {
			return nil, nil, err
		}
		if round >= maxRounds {
			return cloneFinish(res, tr), info, nil
		}
		cs := &cloneState{trace: tr, analysis: res.analysis, file: res.file}
		if err := clonePipeline.RunPhase(ctx, clonePhase, cs); err != nil {
			return nil, nil, err
		}
		if cs.report.Created == 0 {
			return cloneFinish(res, tr), info, nil
		}
		info.Rounds++
		info.Created += cs.report.Created
		for _, d := range cs.report.Decisions {
			info.Cloned = append(info.Cloned, fmt.Sprintf("%s → %s", d.Proc, strings.Join(d.Clones, ", ")))
		}
		info.Source = cs.next
		cur = cs.next
	}
}

// cloneFinish appends the cloning driver's accumulated phase stats to
// the final round's result.
func cloneFinish(res *Result, tr *pipeline.Trace) *Result {
	res.PhaseStats = append(res.PhaseStats, convertPhaseStats(tr)...)
	return res
}

// Run executes an F77s program under the reference interpreter,
// supplying input values to READ statements, and returns its printed
// output. It is exposed for testing and for building tooling around the
// analyzer (the examples use it to demonstrate that transformed
// programs behave identically).
func Run(filename, src string, input []int64) (out string, err error) {
	defer recoverInternal(&err)
	var diags source.ErrorList
	f := parser.ParseSource(filename, src, &diags)
	prog := sem.Analyze(f, &diags)
	if err := diags.Err(); err != nil {
		return "", err
	}
	res, err := interp.Run(prog, interp.Options{Input: input})
	if err != nil {
		return "", err
	}
	return res.Output, nil
}
