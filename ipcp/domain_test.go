package ipcp

import (
	"context"
	"strings"
	"testing"
)

const domSrc = `PROGRAM MAIN
CALL S(3)
CALL S(7)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`

func TestAnalyzeDomainSelector(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domain = "interval"
	res, err := Analyze("p.f", domSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Domain() != "interval" {
		t.Fatalf("Domain() = %q, want interval", res.Domain())
	}
	facts := res.FactsOf("S")
	if len(facts) != 1 || facts[0].Name != "N" || facts[0].Value != "[3,7]" {
		t.Fatalf("FactsOf(S) = %+v, want N = [3,7]", facts)
	}
	if all := res.Facts(); len(all["S"]) != 1 {
		t.Fatalf("Facts() = %+v, want an S entry", all)
	}
}

func TestAnalyzeDomainDefaultFactsMatchConstants(t *testing.T) {
	src := `PROGRAM MAIN
CALL S(5)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	res, err := Analyze("p.f", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Domain() != "const" {
		t.Fatalf("Domain() = %q, want const", res.Domain())
	}
	facts := res.FactsOf("S")
	if len(facts) != 1 || facts[0].Value != "5" {
		t.Fatalf("FactsOf(S) = %+v, want N = 5", facts)
	}
}

func TestAnalyzeUnknownDomain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domain = "octagon"
	if _, err := Analyze("p.f", domSrc, cfg); err == nil || !strings.Contains(err.Error(), "octagon") {
		t.Fatalf("Analyze with unknown domain: err = %v, want unknown-domain error", err)
	}
	if _, err := OpenSession(context.Background(), "p.f", domSrc, cfg); err == nil {
		t.Fatal("OpenSession with unknown domain: want error")
	}
}

func TestDomainsListsRegistry(t *testing.T) {
	names := Domains()
	want := map[string]bool{"const": false, "interval": false, "parity": false, "taint": false, "cond-const": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Domains() missing %q (got %v)", n, names)
		}
	}
}

// TestSessionDomain: delta-edit sessions carry the domain through
// re-analysis.
func TestSessionDomain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domain = "parity"
	src := `PROGRAM MAIN
CALL S(4)
CALL S(10)
END
SUBROUTINE S(N)
INTEGER N
PRINT *, N
END
`
	s, err := OpenSession(context.Background(), "p.f", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	facts := res.FactsOf("S")
	if len(facts) != 1 || facts[0].Value != "even" {
		t.Fatalf("session FactsOf(S) = %+v, want N = even", facts)
	}
}
