package ipcp

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestDegradationOrderingIsSound checks the invariant the graceful-
// degradation chain relies on: every fallback step is sound, i.e. a
// cheaper configuration only ever *loses* constants relative to the
// richer one it replaces. For each testdata program and each adjacent
// pair along the chain
//
//	Polynomial → PassThrough → Intraprocedural → Literal
//
// (and complete → single-round propagation), the cheaper CONSTANTS
// sets must be subsets of the richer ones.
func TestDegradationOrderingIsSound(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "internal", "core", "testdata", "*.f"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}

	kindChain := []Kind{Polynomial, PassThrough, Intraprocedural, Literal}

	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			// The jump-function kind chain.
			results := make([]*Result, len(kindChain))
			for i, k := range kindChain {
				cfg := DefaultConfig()
				cfg.Kind = k
				res, err := Analyze(name, string(src), cfg)
				if err != nil {
					t.Fatalf("kind %v: %v", k, err)
				}
				results[i] = res
			}
			for i := 1; i < len(kindChain); i++ {
				richer, cheaper := results[i-1], results[i]
				label := fmt.Sprintf("%v ⊆ %v", kindChain[i], kindChain[i-1])
				assertConstantsSubset(t, label, cheaper, richer)
				if c, r := cheaper.SubstitutionCount(), richer.SubstitutionCount(); c > r {
					t.Errorf("%s: substitution count grew on fallback: %d > %d", label, c, r)
				}
			}

			// The complete → single-round step (the rounds-axis fallback).
			complete := DefaultConfig()
			complete.Kind = Polynomial
			complete.Complete = true
			full, err := Analyze(name, string(src), complete)
			if err != nil {
				t.Fatalf("complete: %v", err)
			}
			single := complete
			single.Complete = false
			one, err := Analyze(name, string(src), single)
			if err != nil {
				t.Fatalf("single-round: %v", err)
			}
			assertConstantsSubset(t, "single-round ⊆ complete", one, full)
		})
	}
}

// assertConstantsSubset fails unless every CONSTANTS entry of sub is
// present in super, procedure by procedure.
func assertConstantsSubset(t *testing.T, label string, sub, super *Result) {
	t.Helper()
	superSets := super.Constants()
	for proc, ks := range sub.Constants() {
		if !subsetOf(ks, superSets[proc]) {
			t.Errorf("%s violated for %s: %v ⊄ %v", label, proc, ks, superSets[proc])
		}
	}
}
