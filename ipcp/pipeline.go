package ipcp

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/clone"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/subst"
)

// PhaseStat is one analysis phase's contribution to a Result: wall
// time, executions (complete-propagation rounds re-run the jump and
// solve phases), units of work, incremental-cache hits, and
// budget-degradation events attributed to the phase. See
// Result.PhaseStats.
type PhaseStat struct {
	// Phase names the pipeline phase: lookup, parse, sem, graph, jump,
	// solve, subst, assemble (plus clone for AnalyzeWithCloning).
	Phase string `json:"phase"`
	// WallNs is the total wall-clock time in nanoseconds. Phases run
	// sequentially: summing WallNs over an analysis's phases never
	// exceeds the analysis's total wall time.
	WallNs int64 `json:"wall_ns"`
	// Runs counts executions of the phase.
	Runs int64 `json:"runs"`
	// Units counts the phase's units of work (program units parsed and
	// checked, procedures graphed, jump-function evaluations solved).
	Units int64 `json:"units"`
	// MemoHits counts results reused from Config.Cache.
	MemoHits int64 `json:"memo_hits"`
	// Degradations counts budget-driven fallbacks attributed to the
	// phase.
	Degradations int64 `json:"degradations"`
}

func convertPhaseStats(tr *pipeline.Trace) []PhaseStat {
	var out []PhaseStat
	for _, s := range tr.Snapshot() {
		out = append(out, PhaseStat{
			Phase:        s.Phase,
			WallNs:       int64(s.Wall),
			Runs:         s.Runs,
			Units:        s.Units,
			MemoHits:     s.MemoHits,
			Degradations: s.Degradations,
		})
	}
	return out
}

// pipeState is the shared state of one public-API analysis: the input
// sources, the artifacts each phase hands to the next, and the trace
// every phase reports into.
type pipeState struct {
	cfg   Config
	files []SourceFile
	// multi marks the AnalyzeFiles entry point, which (unlike the
	// single-file one) rejects inputs with no program units up front.
	multi bool

	trace    *pipeline.Trace
	diags    source.ErrorList
	world    memo.World
	hasWorld bool
	file     *ast.File
	prog     *sem.Program
	analysis *core.Analysis
	sub      *subst.Result
	out      *Result
}

// analyzeTimed records phase wall time into the state's trace. The
// analyze phase deliberately omits it: the core driver times its own
// graph/jump/solve phases into the same trace, and timing the wrapper
// too would double-count the driver's time.
var analyzeTimed = pipeline.Timed(func(s *pipeState) *pipeline.Trace { return s.trace })

// The public API's phases. Parse and sem are skipped when the
// incremental cache supplied a front-end world (reused or built by the
// cache's own content-addressed front end).
var (
	phaseLookup = pipeline.Phase[*pipeState]{
		Name: "lookup",
		Skip: func(s *pipeState) bool { return s.cfg.Cache == nil },
		Run:  runLookup,
	}.With(analyzeTimed)
	phaseParse = pipeline.Phase[*pipeState]{
		Name: "parse",
		Skip: func(s *pipeState) bool { return s.hasWorld },
		Run:  runParse,
	}.With(analyzeTimed)
	phaseSem = pipeline.Phase[*pipeState]{
		Name: "sem",
		Skip: func(s *pipeState) bool { return s.hasWorld },
		Run:  runSem,
	}.With(analyzeTimed)
	phaseAnalyze = pipeline.Phase[*pipeState]{
		Name: "analyze",
		Run:  runAnalyze,
	}
	phaseSubst = pipeline.Phase[*pipeState]{
		Name: "subst",
		Run:  runSubst,
	}.With(analyzeTimed)
	phaseAssemble = pipeline.Phase[*pipeState]{
		Name: "assemble",
		Run:  runAssemble,
	}.With(analyzeTimed)
)

// analyzePipeline is the one definition of the public API's phase
// order; AnalyzeContext, AnalyzeFilesContext, and (per round)
// AnalyzeWithCloningContext all run it.
var analyzePipeline = pipeline.New(
	phaseLookup, phaseParse, phaseSem, phaseAnalyze, phaseSubst, phaseAssemble,
).Use(pipeline.Attributed[*pipeState]())

// runAnalysis drives one analysis through the pipeline and stamps the
// result with the trace. The caller holds the recoverInternal barrier.
func runAnalysis(ctx context.Context, files []SourceFile, multi bool, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := &pipeState{cfg: cfg, files: files, multi: multi, trace: pipeline.NewTrace()}
	if err := analyzePipeline.Run(ctx, st); err != nil {
		return nil, err
	}
	st.out.PhaseStats = convertPhaseStats(st.trace)
	return st.out, nil
}

// runLookup asks the incremental cache for a front-end world, which
// the cache either reuses (a memo hit) or builds and retains for the
// next analysis. Ineligible sources (oversized, unsplittable,
// erroneous) yield no world and are not an error: the plain front end
// runs and reproduces any diagnostics exactly.
func runLookup(ctx context.Context, s *pipeState) error {
	mf := make([]memo.File, len(s.files))
	for i, sf := range s.files {
		mf[i] = memo.File{Name: sf.Name, Src: sf.Src}
	}
	if w, hit, ok := s.cfg.Cache.c.Lookup(mf); ok {
		s.world, s.hasWorld = w, true
		if hit {
			s.trace.MemoHit("lookup")
		}
	}
	s.trace.AddUnits("lookup", len(s.files))
	return nil
}

// runParse parses every input file into one merged AST: units from all
// files share one program, so COMMON blocks link across files and any
// file may call any other's procedures.
func runParse(ctx context.Context, s *pipeState) error {
	merged := &ast.File{}
	for _, sf := range s.files {
		f := parser.ParseFile(source.NewFile(sf.Name, sf.Src), &s.diags)
		if merged.Source == nil {
			merged.Source = f.Source
		}
		merged.Units = append(merged.Units, f.Units...)
	}
	if s.multi && len(merged.Units) == 0 {
		return fmt.Errorf("ipcp: no program units in %d file(s)", len(s.files))
	}
	s.file = merged
	s.trace.AddUnits("parse", len(merged.Units))
	return nil
}

// runSem checks the merged AST. Without FailFast the front end always
// completes (it is cheap and a partial Program is useless); the context
// bounds only the analysis proper, which degrades. With FailFast every
// phase observes the context and the first exhaustion aborts.
func runSem(ctx context.Context, s *pipeState) error {
	semCtx := ctx
	if !s.cfg.FailFast {
		semCtx = nil
	}
	prog, err := sem.AnalyzeParallelCtx(semCtx, s.file, &s.diags, s.cfg.Parallelism)
	if err != nil {
		return budgetError(err)
	}
	if err := s.diags.Err(); err != nil {
		return err
	}
	s.prog = prog
	s.trace.AddUnits("sem", len(prog.Order))
	return nil
}

// runAnalyze hands the checked program to the core interprocedural
// driver, threading the trace and (when a world is cached) the memo
// hooks through its configuration.
func runAnalyze(ctx context.Context, s *pipeState) error {
	ic := s.cfg.internal()
	ic.Trace = s.trace
	prog := s.prog
	if s.hasWorld {
		ic.Hooks = s.world.Hooks()
		prog = s.world.Prog()
	}
	analysis, err := core.AnalyzeProgramErr(ctx, prog, ic)
	if err != nil {
		return budgetError(err)
	}
	s.analysis = analysis
	return nil
}

// runSubst computes the substitution eagerly so its faults surface as
// *InternalError here (and so repeated Result queries share one
// computation).
func runSubst(ctx context.Context, s *pipeState) error {
	s.sub = s.analysis.Substitute()
	s.trace.AddUnits("subst", len(s.analysis.Prog.Order))
	return nil
}

// runAssemble builds the Result, resolving which front end produced the
// AST and diagnostics (fresh parse or cached world).
func runAssemble(ctx context.Context, s *pipeState) error {
	var front []string
	if s.hasWorld {
		s.file = s.world.File()
		for _, d := range s.world.Diags() {
			front = append(front, d.String())
		}
	} else {
		for _, d := range s.diags.Diags {
			front = append(front, d.String())
		}
	}
	s.out = newResult(s.analysis, s.file, s.sub, front)
	return nil
}

// ---------------------------------------------------------------------
// Cloning driver

// cloneState carries one clone-and-reanalyze round's inputs and
// outputs; its trace persists across rounds so clone time accumulates.
type cloneState struct {
	trace    *pipeline.Trace
	analysis *core.Analysis
	file     *ast.File

	next   string
	report *clone.Report
}

var clonePhase = pipeline.Phase[*cloneState]{Name: "clone", Run: runClone}.
	With(pipeline.Timed(func(s *cloneState) *pipeline.Trace { return s.trace }))

var clonePipeline = pipeline.New[*cloneState]().Use(pipeline.Attributed[*cloneState]())

func runClone(ctx context.Context, s *cloneState) error {
	s.next, s.report = clone.Apply(s.analysis, s.file, clone.Options{})
	s.trace.AddUnits("clone", s.report.Created)
	return nil
}
