package ipcp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sessionTestSrc = `PROGRAM MAIN
CALL TOP(8, 3)
CALL OTHER(5)
END

SUBROUTINE TOP(N, M)
INTEGER N, M
CALL LEAF(N, M)
END

SUBROUTINE LEAF(N, M)
INTEGER N, M
PRINT *, N + M
END

SUBROUTINE OTHER(K)
INTEGER K
PRINT *, K * 2
END
`

// resultKey flattens everything a Result surfaces that cold/session
// equivalence is stated over.
func resultKey(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "subst=%d|", r.SubstitutionCount())
	for _, p := range r.Procedures() {
		for _, c := range r.ConstantsOf(p) {
			fmt.Fprintf(&b, "%s:%s ref=%t;", p, c, c.Referenced)
		}
	}
	fmt.Fprintf(&b, "|warn=%v|", r.Warnings)
	b.WriteString(r.TransformedSource())
	return b.String()
}

// TestSessionPublicAPI drives the public session surface end to end:
// open, fast edit, result equivalence with a cold Analyze of the edited
// text, stats, fingerprint affinity, and edit validation.
func TestSessionPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	s, err := OpenSession(context.Background(), "prog.f", sessionTestSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(sessionTestSrc, "PRINT *, N + M", "PRINT *, N * M", 1)
	leaf := strings.Replace("SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N + M\nEND\n\n", "N + M", "N * M", 1)
	info, err := s.Edit(context.Background(), []UnitEdit{{Op: "replace", Index: 2, Text: leaf}})
	if err != nil {
		t.Fatal(err)
	}
	if !info.FastPath || info.Units != 4 {
		t.Fatalf("edit info: %+v", info)
	}
	if got := s.Source(); got != edited {
		t.Fatalf("Source() does not match edited text:\n%q\nwant\n%q", got, edited)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Analyze("prog.f", edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultKey(res), resultKey(cold); got != want {
		t.Fatalf("session result != cold result\ngot  %q\nwant %q", got, want)
	}
	if got, want := s.Fingerprint(), Fingerprint("prog.f", edited, cfg); got != want {
		t.Fatalf("Fingerprint() = %q, want cold fingerprint %q", got, want)
	}
	if st := s.Stats(); st.FastEdits != 1 || st.FullRebuilds != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Validation errors wrap ErrBadEdit and leave the session untouched.
	if _, err := s.Edit(context.Background(), []UnitEdit{{Op: "replace", Index: 42, Text: "X"}}); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("out-of-range edit error = %v, want ErrBadEdit", err)
	}
	if _, err := s.Edit(context.Background(), []UnitEdit{{Op: "mangle", Index: 0, Text: "X"}}); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("unknown-op edit error = %v, want ErrBadEdit", err)
	}
	if got := s.Source(); got != edited {
		t.Fatal("failed edits mutated the session")
	}

	// Inputs a cold Analyze rejects fail the open the same way.
	if _, err := OpenSession(context.Background(), "bad.f", "GIBBERISH", cfg); err == nil {
		t.Fatal("open of invalid program succeeded")
	}
}

// FuzzSessionDelta: any edit sequence applied to a session, followed by
// analysis, must be byte-identical to a cold analysis of the final
// text — including agreeing on whether the final text is analyzable at
// all. Seeded from the core corpus plus hand-made delta scripts.
//
// Run the corpus with `go test`; explore with
// `go test -fuzz FuzzSessionDelta ./ipcp`.
func FuzzSessionDelta(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "internal", "core", "testdata", "*.f"))
	if len(seeds) == 0 {
		f.Fatal("no seed corpus under ../internal/core/testdata")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), uint8(0), uint8(1), "SUBROUTINE Q(A)\nINTEGER A\nPRINT *, A\nEND\n", uint8(1), uint8(2), "\nSUBROUTINE R(B)\nINTEGER B\nPRINT *, B + 1\nEND\n")
	}
	f.Add(sessionTestSrc, uint8(0), uint8(2), "SUBROUTINE LEAF(N, M)\nINTEGER N, M\nPRINT *, N - M\nEND\n\n", uint8(2), uint8(3), "")
	f.Add(sessionTestSrc, uint8(0), uint8(0), "PROGRAM MAIN\nCALL TOP(1, 2)\nEND\n\n", uint8(0), uint8(2), "oops(")
	f.Fuzz(func(t *testing.T, src string, op1, idx1 uint8, text1 string, op2, idx2 uint8, text2 string) {
		cfg := DefaultConfig()
		noInternal := func(err error) {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("internal error (escaped panic) in %s: %v\n%s", ie.Phase, ie.Value, ie.Stack)
			}
		}
		s, err := OpenSession(context.Background(), "fuzz.f", src, cfg)
		if err != nil {
			noInternal(err)
			return // base program rejected; nothing resident to edit
		}
		ops := []string{"replace", "add", "delete"}
		for _, e := range []UnitEdit{
			{Op: ops[int(op1)%3], Index: int(idx1) % (s.NumUnits() + 1), Text: text1},
			{Op: ops[int(op2)%3], Index: int(idx2) % (s.NumUnits() + 1), Text: text2},
		} {
			if _, err := s.Edit(context.Background(), []UnitEdit{e}); err != nil {
				noInternal(err)
			}
		}
		final := s.Source()
		res, serr := s.Result()
		cold, cerr := Analyze("fuzz.f", final, cfg)
		noInternal(serr)
		noInternal(cerr)
		if (serr != nil) != (cerr != nil) {
			t.Fatalf("error divergence: session=%v cold=%v\nfinal text:\n%s", serr, cerr, final)
		}
		if serr != nil {
			return
		}
		if got, want := resultKey(res), resultKey(cold); got != want {
			t.Fatalf("session diverged from cold analysis of final text\ngot  %q\nwant %q\nfinal text:\n%s", got, want, final)
		}
	})
}
